package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// Options parameterises a distributed campaign run.
type Options struct {
	// Workers are the base URLs of the shard workers
	// (e.g. http://127.0.0.1:9101). At least one is required.
	Workers []string
	// ShardSize bounds scenarios per shard (<= 0 selects
	// campaign.DefaultShardSize).
	ShardSize int
	// ShardTimeout is the per-attempt deadline of one shard (default
	// 2m). A timed-out attempt counts as a failure and the shard is
	// retried, possibly on another worker.
	ShardTimeout time.Duration
	// MaxAttempts bounds attempts per shard before the campaign fails
	// (default 3).
	MaxAttempts int
	// DropAfter is how many consecutive failures retire a worker
	// (default 3). Its in-flight shard is requeued for the survivors.
	DropAfter int
	// Client is the HTTP client shards travel over (default
	// http.DefaultClient; per-attempt deadlines come from ShardTimeout,
	// not the client).
	Client *http.Client
	// OnEvent, when set, observes dispatch/completion/failure/drop
	// events. Calls are serialised; the callback must not block for
	// long — it runs on the dispatch path.
	OnEvent func(Event)
}

func (o Options) withDefaults() Options {
	if o.ShardSize <= 0 {
		o.ShardSize = campaign.DefaultShardSize
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 2 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.DropAfter <= 0 {
		o.DropAfter = 3
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// EventType classifies coordinator events.
type EventType string

const (
	// EventDispatch fires when a shard is handed to a worker.
	EventDispatch EventType = "dispatch"
	// EventShardDone fires when a shard's rows are installed.
	EventShardDone EventType = "shard_done"
	// EventShardFailed fires when an attempt fails (the shard will be
	// retried unless attempts are exhausted).
	EventShardFailed EventType = "shard_failed"
	// EventWorkerDropped fires when a worker is retired after
	// consecutive failures.
	EventWorkerDropped EventType = "worker_dropped"
)

// Event is one step of a distributed run.
type Event struct {
	Type    EventType           `json:"type"`
	Worker  string              `json:"worker"`
	Shard   campaign.ShardRange `json:"shard"`
	Attempt int                 `json:"attempt"`
	// Done and Total are scenarios completed / corpus size after this
	// event.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Err carries the failure of shard_failed / worker_dropped events.
	Err string `json:"err,omitempty"`
	// ElapsedNS is the attempt's wall-clock duration, set on shard_done
	// and shard_failed events.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
}

type shardTask struct {
	r        campaign.ShardRange
	attempts int
}

type coordinator struct {
	job  *campaign.Job
	ref  campaign.CorpusRef
	cfg  ShardConfig
	opts Options

	queue chan *shardTask
	// remaining counts shards not yet installed; allDone closes when it
	// reaches zero so idle workers stop waiting on the queue.
	remaining atomic.Int64
	allDone   chan struct{}
	doneOnce  sync.Once

	// fatal records the first unrecoverable failure and cancels the run.
	fatalMu  sync.Mutex
	fatalErr error
	cancel   context.CancelFunc

	eventMu sync.Mutex
}

// Run executes the job's pending scenarios over the workers and folds
// the final report. The report is byte-identical to a local
// (*campaign.Job).Run for any worker set, shard size, or failure
// schedule: rows are installed by scenario index and the fold is the
// same serial aggregate. Run fails when a shard exhausts MaxAttempts,
// when every worker has been dropped with shards still pending, or
// when ctx is cancelled; the job keeps the rows installed so far, so
// a later Run — local or distributed — resumes from the pending set.
func Run(ctx context.Context, job *campaign.Job, opts Options) (*campaign.Report, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("distrib: no workers")
	}
	shards := job.PendingRanges(opts.ShardSize)
	if len(shards) == 0 {
		return job.Run(ctx)
	}
	_, rsp := obs.StartSpan(ctx, "corpus.ref")
	ref, err := campaign.NewCorpusRef(job.Corpus())
	rsp.SetAttr("fingerprint", ref.Fingerprint)
	rsp.End()
	if err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c := &coordinator{
		job:     job,
		ref:     ref,
		cfg:     NewShardConfig(job.Config()),
		opts:    opts,
		queue:   make(chan *shardTask, len(shards)),
		allDone: make(chan struct{}),
		cancel:  cancel,
	}
	c.remaining.Store(int64(len(shards)))
	for _, r := range shards {
		c.queue <- &shardTask{r: r}
	}

	var wg sync.WaitGroup
	for _, addr := range opts.Workers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.workerLoop(runCtx, addr)
		}(addr)
	}
	wg.Wait()

	c.fatalMu.Lock()
	fatal := c.fatalErr
	c.fatalMu.Unlock()
	switch {
	case fatal != nil:
		return nil, fatal
	case ctx.Err() != nil:
		return nil, ctx.Err()
	case c.remaining.Load() > 0:
		return nil, fmt.Errorf("distrib: all %d workers dropped with %d shards pending",
			len(opts.Workers), c.remaining.Load())
	}
	return job.Run(ctx)
}

func (c *coordinator) workerLoop(ctx context.Context, addr string) {
	consecutive := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.allDone:
			return
		case t := <-c.queue:
			c.emit(Event{Type: EventDispatch, Worker: addr, Shard: t.r, Attempt: t.attempts + 1})
			t0 := time.Now()
			err := c.runShard(ctx, addr, t)
			elapsed := time.Since(t0)
			if err == nil {
				consecutive = 0
				c.emit(Event{Type: EventShardDone, Worker: addr, Shard: t.r,
					Attempt: t.attempts + 1, ElapsedNS: int64(elapsed)})
				if c.remaining.Add(-1) == 0 {
					c.doneOnce.Do(func() { close(c.allDone) })
					return
				}
				continue
			}
			if ctx.Err() != nil {
				// Cancelled mid-flight: not the worker's fault. Requeue so
				// a restarted run still sees the shard as pending.
				c.queue <- t
				return
			}
			t.attempts++
			c.emit(Event{Type: EventShardFailed, Worker: addr, Shard: t.r,
				Attempt: t.attempts, Err: err.Error(), ElapsedNS: int64(elapsed)})
			if t.attempts >= c.opts.MaxAttempts {
				c.fail(fmt.Errorf("distrib: shard [%d,%d) failed %d times, last on %s: %w",
					t.r.Start, t.r.End(), t.attempts, addr, err))
				return
			}
			c.queue <- t
			consecutive++
			if consecutive >= c.opts.DropAfter {
				c.emit(Event{Type: EventWorkerDropped, Worker: addr, Shard: t.r, Attempt: t.attempts, Err: err.Error()})
				return
			}
		}
	}
}

func (c *coordinator) fail(err error) {
	c.fatalMu.Lock()
	if c.fatalErr == nil {
		c.fatalErr = err
	}
	c.fatalMu.Unlock()
	c.cancel()
}

func (c *coordinator) emit(e Event) {
	if c.opts.OnEvent == nil {
		return
	}
	e.Done, e.Total = c.job.Progress()
	c.eventMu.Lock()
	c.opts.OnEvent(e)
	c.eventMu.Unlock()
}

// runShard executes one attempt of one shard against one worker under
// the per-shard deadline, verifies the response is exactly the
// requested range, and installs the rows. When ctx carries a trace the
// request travels with trace headers and the worker's spans come back
// in the response, spliced under this attempt's dispatch span.
func (c *coordinator) runShard(ctx context.Context, addr string, t *shardTask) (err error) {
	sctx, sp := obs.StartSpan(ctx, "shard.dispatch")
	sp.SetAttr("worker", addr)
	sp.SetInt("start", int64(t.r.Start))
	sp.SetInt("count", int64(t.r.Count))
	sp.SetInt("attempt", int64(t.attempts+1))
	defer func() {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}()

	attemptCtx, cancel := context.WithTimeout(ctx, c.opts.ShardTimeout)
	defer cancel()

	body, err := json.Marshal(ShardRequest{
		Version: WireVersion,
		Corpus:  c.ref,
		Start:   t.r.Start,
		Count:   t.r.Count,
		Config:  c.cfg,
	})
	if err != nil {
		return err
	}
	url := strings.TrimRight(addr, "/") + ShardPath
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(sctx, req.Header)
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("worker %s: %s: %s", addr, resp.Status, bytes.TrimSpace(msg))
	}
	var sr ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("worker %s: response: %w", addr, err)
	}
	if sr.Version != WireVersion {
		return fmt.Errorf("worker %s: wire version %d, want %d", addr, sr.Version, WireVersion)
	}
	if len(sr.Rows) != t.r.Count {
		return fmt.Errorf("worker %s: %d rows for a shard of %d", addr, len(sr.Rows), t.r.Count)
	}
	rows := make([]campaign.ScenarioResult, len(sr.Rows))
	for i := range sr.Rows {
		row, err := sr.Rows[i].Result()
		if err != nil {
			return fmt.Errorf("worker %s: %w", addr, err)
		}
		if row.Index != t.r.Start+i {
			return fmt.Errorf("worker %s: row %d has index %d, want %d",
				addr, i, row.Index, t.r.Start+i)
		}
		rows[i] = row
	}
	if err := c.job.InstallRows(rows); err != nil {
		return err
	}
	obs.TraceFrom(ctx).ImportWire(sp.ID(), sr.Spans)
	return nil
}
