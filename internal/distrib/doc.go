// Package distrib fans a campaign out over worker processes: a
// coordinator splits the pending scenario set into contiguous shards,
// ships each shard as a corpus reference (spec plus fingerprint — the
// worker regenerates and verifies, nothing heavyweight travels) over
// HTTP/JSON, and folds the returned rows back into the job by index,
// so the merged report is byte-identical to a local campaign.Run for
// any worker count, shard size, or failure schedule. Failed or
// timed-out shards are retried whole on surviving workers; a worker
// that keeps failing is dropped. This is the fleet-scale execution
// mode of the paper's integration workflow: a supplier change is
// validated against tens of thousands of drawn configurations in the
// time one machine would spend on a fraction of them.
package distrib
