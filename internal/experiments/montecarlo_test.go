package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// The analysis must dominate every simulated response across the seed
// fan — the paper's core validation property, at batch scale.
func TestMonteCarloNoViolations(t *testing.T) {
	mc, err := RunMonteCarlo(MonteCarloParams{Seeds: 8, Duration: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Violations != 0 {
		t.Errorf("%d bound violations under fullCAN", mc.Violations)
	}
	if mc.TotalFrames == 0 {
		t.Error("no frames delivered")
	}
	if mc.TightestMarginPct < 0 || mc.TightestMarginPct > 100 {
		t.Errorf("tightest margin %.2f%% out of range", mc.TightestMarginPct)
	}
	if !strings.Contains(mc.Render(), "bound violations") {
		t.Error("render is missing the violations row")
	}
}

// Worker counts must not change the outcome.
func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	p := MonteCarloParams{Seeds: 6, Duration: 100 * time.Millisecond, Controller: sim.BasicCAN}
	first, err := RunMonteCarlo(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 1
	second, err := RunMonteCarlo(p)
	if err != nil {
		t.Fatal(err)
	}
	if *first != *second {
		t.Errorf("results differ across worker counts:\n %+v\n %+v", *first, *second)
	}
}
