package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/kmatrix"
	"repro/internal/optimize"
	"repro/internal/report"
	"repro/internal/sensitivity"
)

// Figure5 reproduces the message-loss experiment: the fraction of
// messages missing their deadline over the jitter sweep, under best-case
// and worst-case assumptions, before and after the genetic CAN-ID
// optimization.
type Figure5 struct {
	// Best and Worst are the loss curves of the original matrix.
	Best, Worst []sensitivity.LossPoint
	// OptBest and OptWorst are the curves of the optimized matrix.
	OptBest, OptWorst []sensitivity.LossPoint
	// GA is the optimizer outcome.
	GA *optimize.Result
	// Optimized is the matrix with the GA's identifier assignment.
	Optimized *kmatrix.KMatrix
}

// Figure5Params tunes the run; the zero value is the full experiment.
type Figure5Params struct {
	// Quick shrinks the GA budget for tests; the full budget is used by
	// the CLI and benchmarks.
	Quick bool
	// Seed overrides the GA seed (default 1).
	Seed int64
}

// RunFigure5 runs the complete Figure 5 pipeline: sweep the original
// matrix under both scenarios, optimize the CAN IDs against the
// worst-case configuration at the paper's 25% jitter target, and sweep
// the optimized matrix again.
func RunFigure5(p Figure5Params) (*Figure5, error) {
	if p.Seed == 0 {
		p.Seed = 1
	}
	k := DefaultMatrix()
	f := &Figure5{}

	bestCfg := sensitivity.SweepConfig{Analysis: BestCaseAnalysis()}
	worstCfg := sensitivity.SweepConfig{Analysis: WorstCaseAnalysis()}

	var err error
	if f.Best, err = sensitivity.Loss(k, bestCfg); err != nil {
		return nil, err
	}
	if f.Worst, err = sensitivity.Loss(k, worstCfg); err != nil {
		return nil, err
	}

	gaCfg := optimize.Config{
		Seed:       p.Seed,
		EvalScales: []float64{0, 0.125, 0.25},
		// Robustness is scored beyond the miss target so the optimizer
		// "favors robust configurations over sensitive ones" instead of
		// stopping at the first zero-loss assignment.
		RobustnessScale: 0.40,
		Analysis:        WorstCaseAnalysis(),
		StopOnZeroMiss:  true,
		MinGenerations:  15,
	}
	if p.Quick {
		gaCfg.Population, gaCfg.Archive, gaCfg.Generations = 16, 8, 12
		gaCfg.MinGenerations = 2
	}
	if f.GA, err = optimize.Run(k, gaCfg); err != nil {
		return nil, err
	}
	f.Optimized = optimize.Apply(k, f.GA.Best.Assignment)

	if f.OptBest, err = sensitivity.Loss(f.Optimized, bestCfg); err != nil {
		return nil, err
	}
	if f.OptWorst, err = sensitivity.Loss(f.Optimized, worstCfg); err != nil {
		return nil, err
	}
	return f, nil
}

// Series converts the four curves to chart series.
func (f *Figure5) Series() []report.Series {
	mk := func(name string, glyph rune, pts []sensitivity.LossPoint) report.Series {
		s := report.Series{Name: name, Glyph: glyph}
		for _, p := range pts {
			s.X = append(s.X, p.Scale*100)
			s.Y = append(s.Y, p.MissRatio*100)
		}
		return s
	}
	return []report.Series{
		mk("best case", 'b', f.Best),
		mk("worst case", 'W', f.Worst),
		mk("optimized best case", 'o', f.OptBest),
		mk("optimized worst case", '*', f.OptWorst),
	}
}

// LossAt returns the miss ratio of a curve at the given scale, or -1.
func LossAt(pts []sensitivity.LossPoint, scale float64) float64 {
	for _, p := range pts {
		if p.Scale == scale {
			return p.MissRatio
		}
	}
	return -1
}

// WriteCSV emits the four loss curves as CSV (jitter % vs. loss %).
func (f *Figure5) WriteCSV(w io.Writer) error {
	series := f.Series()
	xs := make([]float64, 0, len(f.Best))
	for _, p := range f.Best {
		xs = append(xs, 100*p.Scale)
	}
	return report.WriteSeriesCSV(w, "jitter_percent", xs, series)
}

// Render produces the chart and the optimization summary.
func (f *Figure5) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5 — message loss due to jitter before and after optimization\n\n")
	b.WriteString(report.Chart("messages missing their deadline vs. jitter",
		"jitter in % of message period", "% of messages in the K-Matrix",
		ChartWidth, ChartHeight, f.Series()))
	b.WriteString("\n")
	rows := [][]string{
		{"original", f.GA.Original.Objectives.String()},
		{"optimized (GA best)", f.GA.Best.Objectives.String()},
	}
	b.WriteString(report.Table([]string{"configuration", "objectives (misses over {0,12.5,25}% sweep)"}, rows))
	fmt.Fprintf(&b, "\nGA: %d generations, Pareto front of %d; ",
		f.GA.Generations, len(f.GA.Front))
	fmt.Fprintf(&b, "worst-case loss at 25%% jitter: %.0f%% -> %.0f%%\n",
		100*LossAt(f.Worst, 0.25), 100*LossAt(f.OptWorst, 0.25))
	if LossAt(f.OptWorst, 0.25) == 0 {
		b.WriteString("The optimized system loses no message at 25% jitter, even with burst\nerrors and worst-case stuffing — the paper's headline result.\n")
	}
	return b.String()
}
