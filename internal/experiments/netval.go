package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/eventmodel"
	"repro/internal/gateway"
	"repro/internal/netsim"
	"repro/internal/osek"
	"repro/internal/report"
	"repro/internal/rta"
	"repro/internal/tdma"
)

// NetworkValidation is the network-level cross-validation experiment:
// one core.System — two CAN buses, a TDMA backbone, two gateways with
// different queue policies — analysed compositionally and simulated
// holistically over a seed fan. The paper's network-integration claim
// rests on the compositional bounds dominating every holistic
// observation: end-to-end path latencies, per-message responses,
// gateway queue backlogs, and loss occurring only where the analysis
// predicted a queue too shallow.
type NetworkValidation struct {
	// Seeds is the number of simulated runs.
	Seeds int
	// Duration is the simulated span per run.
	Duration time.Duration
	// Shallow records whether the FIFO was deliberately under-dimensioned.
	Shallow bool
	// PathRows summarises each traced path.
	PathRows []NetworkPathRow
	// GatewayRows summarises each gateway.
	GatewayRows []NetworkGatewayRow
	// Violations counts any observation beyond its bound: path
	// latencies, message responses, backlogs, or loss without a
	// predicted overflow.
	Violations int
	// Losses counts instances lost inside gateways across all runs.
	Losses int
	// TotalFrames counts frames delivered across all runs and buses.
	TotalFrames int
}

// NetworkPathRow is the per-path validation summary.
type NetworkPathRow struct {
	Name       string
	Bound      time.Duration
	Observed   time.Duration
	Completed  int
	Dropped    int
	Violations int
}

// NetworkGatewayRow is the per-gateway validation summary.
type NetworkGatewayRow struct {
	Name          string
	Policy        gateway.Policy
	BacklogBound  int
	QueueDepth    int // 0 = unbounded
	MaxBacklog    int
	Losses        int
	LossPredicted bool
	Violations    int
}

// NetworkValidationParams tunes the run; the zero value is the full
// experiment with a loss-free queue dimensioning.
type NetworkValidationParams struct {
	// Seeds is the number of runs (default 32).
	Seeds int
	// Duration is the simulated span per run (default 2s).
	Duration time.Duration
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// Shallow under-dimensions the shared FIFO to depth 1, so the
	// analysis predicts overflow and the simulation must show it —
	// the "loss only where predicted" direction of the check.
	Shallow bool
	// Trace records bus traces on the first seed (for the network
	// Gantt rendering).
	Trace bool
}

// NetworkCaseStudy wires the reference topology: chassis and
// powertrain CAN buses bridged by a shared-FIFO gateway (two flows),
// a TDMA backbone fed through a per-message-buffer gateway, ECU tasks
// at the ends, and two traced paths.
func NetworkCaseStudy(fifoDepth int) (*core.System, error) {
	s := core.NewSystem()
	busCfg := rta.Config{
		Bus: can.Bus{BitRate: can.Rate500k}, Stuffing: can.StuffingWorstCase,
		DeadlineModel: rta.DeadlineImplicit,
	}
	us, ms := time.Microsecond, time.Millisecond

	if err := s.AddECU("bodyECU", osek.Config{}, []osek.Task{
		{Name: "acquire", Priority: 1, WCET: 600 * us, BCET: 400 * us,
			Event: eventmodel.Periodic(10 * ms), Kind: osek.Preemptive},
	}); err != nil {
		return nil, err
	}
	if err := s.AddBus("chassis", busCfg, []rta.Message{
		{Name: "WheelSpeed", Frame: can.Frame{ID: 0x0A0, DLC: 8}, Event: eventmodel.PeriodicJitter(10*ms, 1*ms)},
		{Name: "Suspension", Frame: can.Frame{ID: 0x150, DLC: 8}, Event: eventmodel.PeriodicJitter(20*ms, 2*ms)},
		{Name: "Brake", Frame: can.Frame{ID: 0x060, DLC: 6}, Event: eventmodel.PeriodicJitter(5*ms, 1*ms)},
		{Name: "Yaw", Frame: can.Frame{ID: 0x120, DLC: 8}, Event: eventmodel.Periodic(20 * ms)},
	}); err != nil {
		return nil, err
	}
	if err := s.AddGateway("gwPT", gateway.Config{
		Service: eventmodel.Periodic(2 * ms), Policy: gateway.SharedFIFO, QueueDepth: fifoDepth,
	}, []string{"ws", "susp"}); err != nil {
		return nil, err
	}
	if err := s.AddBus("powertrain", busCfg, []rta.Message{
		{Name: "WheelSpeedPT", Frame: can.Frame{ID: 0x0B0, DLC: 8}, Event: eventmodel.PeriodicJitter(10*ms, 2*ms)},
		{Name: "SuspensionPT", Frame: can.Frame{ID: 0x151, DLC: 8}, Event: eventmodel.PeriodicJitter(20*ms, 4*ms)},
		{Name: "EngineTorque", Frame: can.Frame{ID: 0x090, DLC: 8}, Event: eventmodel.PeriodicJitter(10*ms, 2*ms)},
		{Name: "Lambda", Frame: can.Frame{ID: 0x200, DLC: 4}, Event: eventmodel.Periodic(50 * ms)},
	}); err != nil {
		return nil, err
	}
	if err := s.AddGateway("gwTT", gateway.Config{
		Service: eventmodel.Periodic(3 * ms), Policy: gateway.PerMessageBuffer,
	}, []string{"wheel"}); err != nil {
		return nil, err
	}
	if err := s.AddTDMABus("backbone",
		tdma.Schedule{Slots: []tdma.Slot{
			{Owner: "WheelTT", Length: 500 * us},
			{Owner: "StatusTT", Length: 500 * us},
		}},
		can.Bus{BitRate: can.Rate500k}, can.StuffingWorstCase,
		[]tdma.Message{
			{Name: "WheelTT", Frame: can.Frame{ID: 0x01, DLC: 8}, Event: eventmodel.PeriodicJitter(10*ms, 4*ms)},
			{Name: "StatusTT", Frame: can.Frame{ID: 0x02, DLC: 8}, Event: eventmodel.Periodic(20 * ms)},
		}); err != nil {
		return nil, err
	}
	if err := s.AddECU("engineECU", osek.Config{}, []osek.Task{
		{Name: "control", Priority: 1, WCET: 1 * ms, BCET: 800 * us,
			Event: eventmodel.Periodic(10 * ms), Kind: osek.Preemptive},
	}); err != nil {
		return nil, err
	}

	links := [][2]core.ElementRef{
		{{Resource: "bodyECU", Element: "acquire"}, {Resource: "chassis", Element: "WheelSpeed"}},
		{{Resource: "chassis", Element: "WheelSpeed"}, {Resource: "gwPT", Element: "ws"}},
		{{Resource: "gwPT", Element: "ws"}, {Resource: "powertrain", Element: "WheelSpeedPT"}},
		{{Resource: "chassis", Element: "Suspension"}, {Resource: "gwPT", Element: "susp"}},
		{{Resource: "gwPT", Element: "susp"}, {Resource: "powertrain", Element: "SuspensionPT"}},
		{{Resource: "powertrain", Element: "WheelSpeedPT"}, {Resource: "gwTT", Element: "wheel"}},
		{{Resource: "gwTT", Element: "wheel"}, {Resource: "backbone", Element: "WheelTT"}},
		{{Resource: "backbone", Element: "WheelTT"}, {Resource: "engineECU", Element: "control"}},
	}
	for _, l := range links {
		if err := s.Connect(l[0], l[1]); err != nil {
			return nil, err
		}
	}
	if err := s.AddPath("wheel-e2e",
		core.ElementRef{Resource: "chassis", Element: "WheelSpeed"},
		core.ElementRef{Resource: "gwPT", Element: "ws"},
		core.ElementRef{Resource: "powertrain", Element: "WheelSpeedPT"},
		core.ElementRef{Resource: "gwTT", Element: "wheel"},
		core.ElementRef{Resource: "backbone", Element: "WheelTT"},
	); err != nil {
		return nil, err
	}
	if err := s.AddPath("suspension",
		core.ElementRef{Resource: "chassis", Element: "Suspension"},
		core.ElementRef{Resource: "gwPT", Element: "susp"},
		core.ElementRef{Resource: "powertrain", Element: "SuspensionPT"},
	); err != nil {
		return nil, err
	}
	return s, nil
}

// DimensionedFIFODepth is the loss-free FIFO depth of the case study,
// comfortably above the analytic backlog bound.
const DimensionedFIFODepth = 8

// RunNetworkValidation analyses the case-study topology, fans the
// network simulator over the seeds, and folds every observation
// against its compositional bound.
func RunNetworkValidation(p NetworkValidationParams) (*NetworkValidation, []report.BusTrace, error) {
	if p.Seeds <= 0 {
		p.Seeds = 32
	}
	if p.Duration <= 0 {
		p.Duration = 2 * time.Second
	}
	depth := DimensionedFIFODepth
	if p.Shallow {
		depth = 1
	}
	sys, err := NetworkCaseStudy(depth)
	if err != nil {
		return nil, nil, err
	}
	a, err := sys.Analyze(0)
	if err != nil {
		return nil, nil, err
	}
	if !a.Converged {
		return nil, nil, fmt.Errorf("netval: analysis did not converge")
	}
	topo, err := netsim.FromSystem(sys)
	if err != nil {
		return nil, nil, err
	}
	seeds := make([]int64, p.Seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	results, err := netsim.RunSeeds(topo, netsim.Config{Duration: p.Duration}, seeds, p.Workers)
	if err != nil {
		return nil, nil, err
	}

	nv := &NetworkValidation{Seeds: p.Seeds, Duration: p.Duration, Shallow: p.Shallow}

	// Path rows, seeded with their bounds.
	for _, ps := range topo.Paths {
		bound, ok := netsim.SimulatedPathBound(sys, a, ps.Name)
		if !ok {
			return nil, nil, fmt.Errorf("netval: unbounded path %s", ps.Name)
		}
		nv.PathRows = append(nv.PathRows, NetworkPathRow{Name: ps.Name, Bound: bound})
	}
	for _, g := range topo.Gateways {
		rep := a.GatewayReports[g.Name]
		lossPredicted := rep.Overflow
		for _, fr := range rep.Flows {
			lossPredicted = lossPredicted || fr.OverwriteLoss
		}
		nv.GatewayRows = append(nv.GatewayRows, NetworkGatewayRow{
			Name: g.Name, Policy: g.Policy, BacklogBound: rep.Backlog,
			QueueDepth: g.QueueDepth, LossPredicted: lossPredicted,
		})
	}

	for _, res := range results {
		for pi := range nv.PathRows {
			row := &nv.PathRows[pi]
			pr := res.Path(row.Name)
			row.Completed += pr.Completed
			row.Dropped += pr.Dropped
			if pr.MaxLatency > row.Observed {
				row.Observed = pr.MaxLatency
			}
			if pr.MaxLatency > row.Bound {
				row.Violations++
			}
		}
		for _, br := range res.Buses {
			rep := a.BusReports[br.Name]
			for _, st := range br.Stats {
				nv.TotalFrames += st.Sent
				r := rep.ByName(st.Name)
				if r == nil || r.WCRT == rta.Unschedulable || st.Sent == 0 {
					continue
				}
				if st.MaxResponse > r.WCRT {
					nv.Violations++
				}
			}
		}
		for _, br := range res.TDMABuses {
			rep := a.TDMAReports[br.Name]
			for _, st := range br.Stats {
				nv.TotalFrames += st.Sent
				r := rep.ByName(st.Name)
				if r == nil || r.WCRT == tdma.Unschedulable || st.Sent == 0 {
					continue
				}
				if st.MaxResponse > r.WCRT {
					nv.Violations++
				}
			}
		}
		for gi := range nv.GatewayRows {
			row := &nv.GatewayRows[gi]
			gr := res.Gateway(row.Name)
			if gr.MaxBacklog > row.MaxBacklog {
				row.MaxBacklog = gr.MaxBacklog
			}
			if gr.MaxBacklog > row.BacklogBound {
				row.Violations++
			}
			lost := gr.Lost()
			row.Losses += lost
			nv.Losses += lost
			if lost > 0 && !row.LossPredicted {
				// Loss although the analysis predicted none: violation.
				row.Violations++
			}
		}
	}
	for _, row := range nv.PathRows {
		nv.Violations += row.Violations
	}
	for _, row := range nv.GatewayRows {
		nv.Violations += row.Violations
	}

	var traces []report.BusTrace
	if p.Trace {
		one, err := netsim.Run(topo, netsim.Config{
			Duration: p.Duration, Seed: seeds[0], RecordTrace: true,
		})
		if err != nil {
			return nil, nil, err
		}
		traces = networkTraces(topo, one)
	}
	return nv, traces, nil
}

// networkTraces assembles the per-bus traces of one run for the
// network Gantt rendering, in topology order.
func networkTraces(topo *netsim.Topology, res *netsim.Result) []report.BusTrace {
	var out []report.BusTrace
	add := func(name string, msgNames []string) {
		br := res.Bus(name)
		if br == nil {
			return
		}
		out = append(out, report.BusTrace{Name: name, Messages: msgNames, Trace: br.Trace})
	}
	for _, b := range topo.Buses {
		names := make([]string, len(b.Messages))
		for i, m := range b.Messages {
			names[i] = m.Name
		}
		add(b.Name, names)
	}
	for _, d := range topo.TDMABuses {
		names := make([]string, len(d.Messages))
		for i, m := range d.Messages {
			names[i] = m.Name
		}
		add(d.Name, names)
	}
	return out
}

// Render summarises the network validation outcome.
func (n *NetworkValidation) Render() string {
	var b strings.Builder
	b.WriteString("Network Monte-Carlo cross-validation — holistic simulation vs. compositional bounds\n\n")
	rows := [][]string{
		{"runs x duration", fmt.Sprintf("%d x %v", n.Seeds, n.Duration)},
		{"frames delivered", fmt.Sprint(n.TotalFrames)},
		{"bound violations", fmt.Sprint(n.Violations)},
		{"gateway losses", fmt.Sprint(n.Losses)},
	}
	b.WriteString(report.Table([]string{"quantity", "value"}, rows))

	b.WriteString("\nend-to-end paths (observed max vs. compositional bound):\n")
	prow := make([][]string, 0, len(n.PathRows))
	for _, r := range n.PathRows {
		margin := "-"
		if r.Bound > 0 {
			margin = fmt.Sprintf("%.1f%%", 100*float64(r.Bound-r.Observed)/float64(r.Bound))
		}
		prow = append(prow, []string{
			r.Name, fmt.Sprint(r.Completed), fmt.Sprint(r.Dropped),
			r.Observed.String(), r.Bound.String(), margin,
		})
	}
	b.WriteString(report.Table(
		[]string{"path", "completed", "dropped", "observed", "bound", "margin"}, prow))

	b.WriteString("\ngateways (observed backlog vs. bound, loss vs. prediction):\n")
	grow := make([][]string, 0, len(n.GatewayRows))
	for _, r := range n.GatewayRows {
		depth := "unbounded"
		if r.QueueDepth > 0 {
			depth = fmt.Sprint(r.QueueDepth)
		}
		predicted := "no loss"
		if r.LossPredicted {
			predicted = "loss possible"
		}
		grow = append(grow, []string{
			r.Name, r.Policy.String(), depth,
			fmt.Sprint(r.MaxBacklog), fmt.Sprint(r.BacklogBound),
			fmt.Sprint(r.Losses), predicted,
		})
	}
	b.WriteString(report.Table(
		[]string{"gateway", "policy", "depth", "max backlog", "bound", "losses", "analysis"}, grow))

	if n.Violations == 0 {
		if n.Shallow {
			b.WriteString("\nThe under-dimensioned FIFO lost messages exactly where the analysis\npredicted overflow; every latency and backlog stayed within its bound.\n")
		} else {
			b.WriteString("\nNo observation exceeded its compositional bound: the network-level\nanalysis dominates holistic simulation, across buses and gateways.\n")
		}
	} else {
		b.WriteString("\nWARNING: observations exceeded the compositional bounds.\n")
	}
	return b.String()
}
