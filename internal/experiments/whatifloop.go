package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/rta"
	"repro/internal/whatif"
)

// IterationLoop is the incremental-speedup experiment: the OEM/supplier
// iteration loop of the paper, replayed as a batch of interface
// revisions against one base matrix. Each revision edits the send
// jitter (and occasionally the length) of a few messages — the figures
// a supplier data sheet actually revises — and the OEM re-verifies the
// bus through a what-if session. The analytic work actually performed
// is counted against the work a from-scratch re-analysis of every
// variant would do.
type IterationLoop struct {
	// Variants is the number of revisions re-verified.
	Variants int
	// Messages is the bus size.
	Messages int
	// Reanalysed counts per-message analyses actually run.
	Reanalysed int
	// Reused counts per-message results served from the store.
	Reused int
	// FullWork is the per-message analysis count a from-scratch loop
	// would have run (variants x messages).
	FullWork int
	// BoundsChanged counts messages whose WCRT moved at least once.
	BoundsChanged int
	// Verified reports that every incremental report was bit-identical
	// to a from-scratch analysis of its variant (always checked).
	Verified bool
}

// IterationLoopParams tunes the experiment; the zero value is the full
// run.
type IterationLoopParams struct {
	// Variants is the number of revisions (default 64).
	Variants int
	// Seed drives the revision draws (default 1).
	Seed int64
}

// RunIterationLoop replays the revision batch.
func RunIterationLoop(p IterationLoopParams) (*IterationLoop, error) {
	if p.Variants <= 0 {
		p.Variants = 64
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	k := DefaultMatrix()
	cfg := WorstCaseAnalysis()
	rng := rand.New(rand.NewSource(p.Seed))

	sess := whatif.NewBusSession(k, cfg, whatif.Options{Workers: 1})
	base, err := sess.Analyze()
	if err != nil {
		return nil, err
	}
	startStats := sess.Stats()

	out := &IterationLoop{
		Variants: p.Variants,
		Messages: len(k.Messages),
		FullWork: p.Variants * len(k.Messages),
		Verified: true,
	}
	moved := map[string]bool{}
	for v := 0; v < p.Variants; v++ {
		sess.Reset()
		var cs whatif.ChangeSet
		for n := 1 + rng.Intn(3); n > 0; n-- {
			row := k.Messages[rng.Intn(len(k.Messages))]
			if rng.Intn(4) == 0 {
				cs = append(cs, whatif.SetDLC{Message: row.Name, DLC: 1 + rng.Intn(8)})
			} else {
				cs = append(cs, whatif.SetJitter{
					Message: row.Name,
					Jitter:  time.Duration(rng.Int63n(int64(row.Period) / 2)),
				})
			}
		}
		if err := sess.Apply(cs...); err != nil {
			return nil, err
		}
		rep, err := sess.Analyze()
		if err != nil {
			return nil, err
		}
		// Bit-identity against from-scratch, every variant.
		variant := sess.Matrix()
		fcfg := cfg
		fcfg.Bus = variant.Bus()
		full, err := rta.Analyze(variant.ToRTA(), fcfg)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(rep, full) {
			out.Verified = false
			return out, fmt.Errorf("experiments: variant %d: incremental report differs from full analysis", v)
		}
		for i := range rep.Results {
			r := &rep.Results[i]
			if b := base.ByName(r.Message.Name); b != nil && b.WCRT != r.WCRT {
				moved[r.Message.Name] = true
			}
		}
	}
	st := sess.Stats()
	out.Reanalysed = int(st.Misses - startStats.Misses)
	out.Reused = int(st.Hits - startStats.Hits)
	out.BoundsChanged = len(moved)
	return out, nil
}

// Render summarises the loop economics.
func (l *IterationLoop) Render() string {
	var b strings.Builder
	b.WriteString("Incremental what-if loop — supplier revisions vs. from-scratch re-verification\n\n")
	saved := 100 * (1 - float64(l.Reanalysed)/float64(l.FullWork))
	rows := [][]string{
		{"revisions re-verified", fmt.Sprint(l.Variants)},
		{"bus size", fmt.Sprintf("%d messages", l.Messages)},
		{"per-message analyses run", fmt.Sprint(l.Reanalysed)},
		{"served from store", fmt.Sprint(l.Reused)},
		{"from-scratch equivalent", fmt.Sprint(l.FullWork)},
		{"analysis work avoided", fmt.Sprintf("%.1f%%", saved)},
		{"bounds that moved", fmt.Sprint(l.BoundsChanged)},
		{"bit-identical to full", fmt.Sprint(l.Verified)},
	}
	b.WriteString(report.Table([]string{"quantity", "value"}, rows))
	b.WriteString("\nEvery variant was cross-checked against a from-scratch analysis;\nthe store only changes what is recomputed, never the result.\n")
	return b.String()
}
