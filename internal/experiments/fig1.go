package experiments

import (
	"fmt"
	"strings"

	"repro/internal/can"
	"repro/internal/load"
)

// Figure1 is the load-analysis example of the paper's Section 3.1: four
// ECUs contributing 100/50/20/10 kbit/s to a 500 kbit/s bus, 36% total,
// contrasted with the load of the case-study matrix under both stuffing
// assumptions.
type Figure1 struct {
	// Paper is the exact Figure 1 scenario.
	Paper *load.Report
	// CaseNominal and CaseWorst are the case-study matrix loads under
	// nominal and worst-case stuffing.
	CaseNominal, CaseWorst *load.Report
}

// RunFigure1 computes the load reports.
func RunFigure1() *Figure1 {
	k := DefaultMatrix()
	return &Figure1{
		Paper:       load.Figure1Example(),
		CaseNominal: load.FromKMatrix(k, can.StuffingNominal),
		CaseWorst:   load.FromKMatrix(k, can.StuffingWorstCase),
	}
}

// Render produces the textual figure.
func (f *Figure1) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1 — simple load analysis (paper example)\n\n")
	b.WriteString(f.Paper.String())
	lo, hi := load.CriticalLimits()
	fmt.Fprintf(&b, "\nOEM folklore limits: %.0f%%-%.0f%% — \"much variation among the OEMs\"\n",
		100*lo, 100*hi)
	fmt.Fprintf(&b, "\nCase-study matrix (%.0f kbit/s):\n", f.CaseNominal.BusBitsPerSecond/1000)
	fmt.Fprintf(&b, "  nominal stuffing:    %5.1f%%\n", 100*f.CaseNominal.Utilization())
	fmt.Fprintf(&b, "  worst-case stuffing: %5.1f%%\n", 100*f.CaseWorst.Utilization())
	b.WriteString("\nThe load model says nothing about deadlines; see Figures 4 and 5.\n")
	return b.String()
}
