// Package experiments contains one driver per figure of the paper. Each
// driver returns structured data plus a Render method producing the
// text/chart form; the CLI (cmd/symtago), the benchmark harness
// (bench_test.go) and EXPERIMENTS.md all run the same code.
//
// The case-study workload is the synthetic power-train matrix of
// package kmatrix (seed 1), substituting for the paper's proprietary
// K-Matrix; see DESIGN.md for the substitution argument.
//
// Scenario conventions, fixed across all experiments:
//
//   - Best case (the paper's "ignoring bus errors"): nominal frame
//     lengths, no errors.
//   - Worst case: worst-case bit stuffing plus the Punnekkat-style burst
//     error model (bursts of 3 errors, 100us apart, recurring every
//     10ms).
//   - Loss criterion (both cases): an instance is lost when it is still
//     in the sender buffer as its successor arrives. With the jittered
//     response R measured from the nominal activation this is exactly
//     R > T — the "minimum re-arrival time as a deadline" of the paper,
//     expressed at the nominal instant (rta.DeadlineImplicit).
package experiments

import (
	"time"

	"repro/internal/can"
	"repro/internal/errormodel"
	"repro/internal/kmatrix"
	"repro/internal/rta"
)

// CaseStudySeed pins the synthetic power-train matrix used everywhere.
const CaseStudySeed = 1

// DefaultMatrix returns the case-study communication matrix.
func DefaultMatrix() *kmatrix.KMatrix {
	return kmatrix.Powertrain(kmatrix.GenConfig{Seed: CaseStudySeed})
}

// WorstBurst is the burst error model of the worst-case experiments.
func WorstBurst() errormodel.Model {
	return errormodel.Burst{
		Interval: 10 * time.Millisecond,
		Length:   3,
		Gap:      100 * time.Microsecond,
	}
}

// BestCaseAnalysis is the error-free, nominal-stuffing configuration.
func BestCaseAnalysis() rta.Config {
	return rta.Config{
		Stuffing:      can.StuffingNominal,
		DeadlineModel: rta.DeadlineImplicit,
	}
}

// WorstCaseAnalysis is the burst-error, worst-case-stuffing
// configuration.
func WorstCaseAnalysis() rta.Config {
	return rta.Config{
		Stuffing:      can.StuffingWorstCase,
		Errors:        WorstBurst(),
		DeadlineModel: rta.DeadlineImplicit,
	}
}

// ChartWidth and ChartHeight size the rendered ASCII figures.
const (
	ChartWidth  = 72
	ChartHeight = 18
)
