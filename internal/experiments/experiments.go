package experiments

import (
	"time"

	"repro/internal/can"
	"repro/internal/errormodel"
	"repro/internal/kmatrix"
	"repro/internal/rta"
)

// CaseStudySeed pins the synthetic power-train matrix used everywhere.
const CaseStudySeed = 1

// DefaultMatrix returns the case-study communication matrix.
func DefaultMatrix() *kmatrix.KMatrix {
	return kmatrix.Powertrain(kmatrix.GenConfig{Seed: CaseStudySeed})
}

// WorstBurst is the burst error model of the worst-case experiments.
func WorstBurst() errormodel.Model {
	return errormodel.Burst{
		Interval: 10 * time.Millisecond,
		Length:   3,
		Gap:      100 * time.Microsecond,
	}
}

// BestCaseAnalysis is the error-free, nominal-stuffing configuration.
func BestCaseAnalysis() rta.Config {
	return rta.Config{
		Stuffing:      can.StuffingNominal,
		DeadlineModel: rta.DeadlineImplicit,
	}
}

// WorstCaseAnalysis is the burst-error, worst-case-stuffing
// configuration.
func WorstCaseAnalysis() rta.Config {
	return rta.Config{
		Stuffing:      can.StuffingWorstCase,
		Errors:        WorstBurst(),
		DeadlineModel: rta.DeadlineImplicit,
	}
}

// ChartWidth and ChartHeight size the rendered ASCII figures.
const (
	ChartWidth  = 72
	ChartHeight = 18
)
