package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sensitivity"
)

func TestFigure1(t *testing.T) {
	f := RunFigure1()
	if got := f.Paper.Utilization(); math.Abs(got-0.36) > 1e-9 {
		t.Errorf("paper example utilisation = %v, want 0.36", got)
	}
	if f.CaseWorst.Utilization() <= f.CaseNominal.Utilization() {
		t.Error("worst-case load must exceed nominal")
	}
	out := f.Render()
	for _, want := range []string{"36%", "Figure 1", "nominal stuffing"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure2(t *testing.T) {
	f, err := RunFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if f.Result.Errors == 0 {
		t.Error("the trace scenario must show error signalling")
	}
	// The bursting stream must actually burst: more released than the
	// periodic count alone, with overwrite losses possible.
	engine := f.Result.StatsByName("engine")
	if engine == nil || engine.Retransmissions == 0 && f.Result.Errors < 2 {
		t.Error("expected retransmissions in the window")
	}
	out := f.Render()
	for _, want := range []string{"Figure 2", "#", "x error", "retransmits"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Determinism: the figure is a regression artefact.
	again, err := RunFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if again.Render() != out {
		t.Error("Figure 2 is not deterministic")
	}
}

func TestFigure3(t *testing.T) {
	f := RunFigure3()
	if f.Known == 0 || f.Unknown == 0 {
		t.Errorf("known/unknown split = %d/%d; both must be populated", f.Known, f.Unknown)
	}
	if f.Known+f.Unknown != len(f.Matrix.Messages) {
		t.Error("split does not cover the matrix")
	}
	out := f.Render()
	for _, want := range []string{"Figure 3", "K-Matrix", "send jitters", "error model"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure4(t *testing.T) {
	f, err := RunFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if f.Counts[sensitivity.Robust] == 0 {
		t.Error("no robust messages — Figure 4 needs both ends of the spectrum")
	}
	if f.Counts[sensitivity.Sensitive]+f.Counts[sensitivity.VerySensitive] == 0 {
		t.Error("no sensitive messages")
	}
	if len(f.Selected) < 3 {
		t.Errorf("selected %d representative curves, want >= 3", len(f.Selected))
	}
	// The robust representative's delay curve must be much flatter than
	// the most sensitive one's.
	robust := f.Sweep.CurveByName(f.Selected[0])
	steep := f.Sweep.CurveByName(f.Selected[len(f.Selected)-1])
	if robust.Growth() >= steep.Growth() {
		t.Errorf("robust growth %v not below sensitive growth %v",
			robust.Growth(), steep.Growth())
	}
	out := f.Render()
	for _, want := range []string{"Figure 4", "robust", "very sensitive", "jitter in %"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure5Quick(t *testing.T) {
	f, err := RunFigure5(Figure5Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Paper experiment 1: zero jitters, no errors — no loss.
	if f.Best[0].MissRatio != 0 {
		t.Error("best case must lose nothing at zero jitter")
	}
	// Worst case dominates best case pointwise.
	for i := range f.Best {
		if f.Worst[i].MissRatio < f.Best[i].MissRatio {
			t.Errorf("worst below best at scale %v", f.Best[i].Scale)
		}
	}
	// Worst case loses earlier than best case.
	if sensitivity.FirstLossScale(f.Worst) >= sensitivity.FirstLossScale(f.Best) {
		t.Error("worst case should lose earlier than best case")
	}
	// The headline: optimized worst case loses nothing through 25%.
	for _, p := range f.OptWorst {
		if p.Scale <= 0.251 && p.MissRatio > 0 {
			t.Errorf("optimized worst case loses %.0f%% at %.0f%%", 100*p.MissRatio, 100*p.Scale)
		}
	}
	// And the GA never regresses below the original.
	if f.GA.Best.Objectives.Misses > f.GA.Original.Objectives.Misses {
		t.Error("GA best worse than original")
	}
	out := f.Render()
	for _, want := range []string{"Figure 5", "best case", "worst case", "optimized"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure6(t *testing.T) {
	f, err := RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	if f.FirstCheck.OK() {
		t.Error("first supplier design must violate the OEM requirement")
	}
	if !f.SecondCheck.OK() {
		t.Error("refined design must satisfy the OEM requirement")
	}
	if !f.ArrivalCheck.OK() {
		t.Error("OEM arrival guarantees must satisfy the consumer")
	}
	if len(f.Steps) < 6 {
		t.Errorf("transcript has %d steps, want >= 6", len(f.Steps))
	}
	out := f.Render()
	for _, want := range []string{"Figure 6", "OEM", "supplier", "guarantee"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
