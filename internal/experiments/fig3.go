package experiments

import (
	"fmt"
	"strings"

	"repro/internal/kmatrix"
	"repro/internal/report"
)

// Figure3 reproduces the information model of the paper's Figure 3: the
// data a reliable schedulability analysis needs, split into what the
// OEM's K-Matrix covers (the static part) and the dynamic inputs that
// must come from suppliers or from assumptions — send jitters,
// controller types, error models, flashing/diagnosis traffic.
type Figure3 struct {
	// Matrix is the inspected communication matrix.
	Matrix *kmatrix.KMatrix
	// Known and Unknown count rows with and without supplier jitters.
	Known, Unknown int
}

// RunFigure3 inventories the case-study matrix.
func RunFigure3() *Figure3 {
	k := DefaultMatrix()
	f := &Figure3{Matrix: k}
	for _, m := range k.Messages {
		if m.JitterKnown {
			f.Known++
		} else {
			f.Unknown++
		}
	}
	return f
}

// Render produces the inventory.
func (f *Figure3) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3 — information required for reliable schedulability analysis\n\n")
	k := f.Matrix
	fmt.Fprintf(&b, "bus: %s at %d bit/s, %d messages, %d nodes (%v)\n\n",
		k.BusName, k.BitRate, len(k.Messages), len(k.Nodes()), k.Nodes())

	rows := [][]string{
		{"K-Matrix: IDs, lengths, periods", "static", "OEM", fmt.Sprintf("%d rows imported", len(k.Messages))},
		{"send jitters (dynamic pattern)", "dynamic", "ECU supplier", fmt.Sprintf("%d known, %d assumed", f.Known, f.Unknown)},
		{"controller types (basicCAN/fullCAN)", "dynamic", "ECU supplier", "modelled in internal/sim"},
		{"error model (MTBF, burst)", "environment", "field data", "internal/errormodel"},
		{"flashing & diagnosis traffic", "environment", "process", "what-if via examples/flashing"},
	}
	b.WriteString(report.Table(
		[]string{"information", "kind", "source", "status in this reproduction"}, rows))
	b.WriteString("\nThe grey area of the paper's Figure 3 — the OEM's own scope — covers only\nthe static K-Matrix; everything else enters as assumption or supplier data.\n")
	return b.String()
}
