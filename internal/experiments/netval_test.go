package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
)

func TestNetworkValidationBoundsDominate(t *testing.T) {
	nv, _, err := RunNetworkValidation(NetworkValidationParams{
		Seeds: 6, Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nv.Violations != 0 {
		t.Errorf("violations = %d, want 0", nv.Violations)
	}
	if nv.Losses != 0 {
		t.Errorf("losses = %d on the dimensioned queue, want 0", nv.Losses)
	}
	if len(nv.PathRows) != 2 {
		t.Fatalf("path rows = %d, want 2", len(nv.PathRows))
	}
	for _, row := range nv.PathRows {
		if row.Completed == 0 {
			t.Errorf("path %s never completed", row.Name)
		}
		if row.Observed <= 0 || row.Observed > row.Bound {
			t.Errorf("path %s observed %v outside (0, %v]", row.Name, row.Observed, row.Bound)
		}
	}
	out := nv.Render()
	if !strings.Contains(out, "wheel-e2e") || !strings.Contains(out, "dominates") {
		t.Errorf("render missing expected sections:\n%s", out)
	}
}

func TestNetworkValidationShallowLosesWherePredicted(t *testing.T) {
	nv, _, err := RunNetworkValidation(NetworkValidationParams{
		Seeds: 4, Duration: 1 * time.Second, Shallow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loss must occur — and only because the analysis predicted the
	// depth-1 FIFO can overflow; that is not a violation.
	if nv.Losses == 0 {
		t.Error("depth-1 FIFO lost nothing")
	}
	if nv.Violations != 0 {
		t.Errorf("violations = %d; predicted loss must not count as one", nv.Violations)
	}
	predicted := false
	for _, row := range nv.GatewayRows {
		if row.Name == "gwPT" {
			predicted = row.LossPredicted
		}
	}
	if !predicted {
		t.Error("analysis did not flag the shallow FIFO")
	}
}

func TestNetworkValidationDeterministicAcrossWorkers(t *testing.T) {
	p := NetworkValidationParams{Seeds: 4, Duration: 300 * time.Millisecond}
	p.Workers = 1
	ref, _, err := RunNetworkValidation(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		p.Workers = workers
		got, _, err := RunNetworkValidation(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("validation differs between 1 and %d workers", workers)
		}
	}
}

func TestNetworkValidationTraceGantt(t *testing.T) {
	_, traces, err := RunNetworkValidation(NetworkValidationParams{
		Seeds: 1, Duration: 200 * time.Millisecond, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("traces for %d buses, want 3", len(traces))
	}
	out := report.NetworkGantt(traces, 0, 50*time.Millisecond, 72)
	for _, want := range []string{"== chassis ==", "== powertrain ==", "== backbone ==", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("network gantt missing %q:\n%s", want, out)
		}
	}
}
