package experiments

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// TestRunCampaignQuick drives the experiments-level entry point on the
// CI-sized corpus and sanity-checks the rendered report.
func TestRunCampaignQuick(t *testing.T) {
	rep, _, err := RunCampaign(CampaignParams{
		Spec:   scenario.Spec{Count: 16},
		Config: campaign.Config{Workers: 4},
		Quick:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != 16 {
		t.Fatalf("expected 16 scenarios, got %d", rep.Scenarios)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d observations exceeded compositional bounds", rep.Violations)
	}
	text := rep.Render()
	for _, want := range []string{"Campaign —", "cross-validation", "what-if perturbation"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report misses %q:\n%s", want, text)
		}
	}
}
