package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/can"
	"repro/internal/report"
	"repro/internal/rta"
	"repro/internal/sensitivity"
)

// Figure4 reproduces the jitter-sensitivity plot: worst-case response
// time (from-arrival delay) versus jitter scale for selected messages,
// with the robust / medium / sensitive / very sensitive classification.
type Figure4 struct {
	// Sweep is the full sweep result.
	Sweep *sensitivity.Result
	// Classes maps every message to its class.
	Classes map[string]sensitivity.Class
	// Counts tallies the classes.
	Counts map[sensitivity.Class]int
	// Selected lists the representative messages plotted, one per class
	// where available.
	Selected []string
}

// RunFigure4 sweeps the case-study matrix with worst-case stuffing and
// no errors (sensitivity is a structural property; errors shift the
// curves but not the classification story).
func RunFigure4() (*Figure4, error) {
	k := DefaultMatrix()
	cfg := sensitivity.SweepConfig{
		Analysis: rta.Config{
			Stuffing:      can.StuffingWorstCase,
			DeadlineModel: rta.DeadlineImplicit,
		},
	}
	res, err := sensitivity.Sweep(k, cfg)
	if err != nil {
		return nil, err
	}
	f := &Figure4{
		Sweep:   res,
		Classes: res.Classification(sensitivity.ClassifyConfig{}),
		Counts:  res.ClassCounts(sensitivity.ClassifyConfig{}),
	}
	f.Selected = selectRepresentatives(res, f.Classes)
	return f, nil
}

// selectRepresentatives picks, per class, the message with the largest
// final delay — the most legible curve of its class.
func selectRepresentatives(res *sensitivity.Result, classes map[string]sensitivity.Class) []string {
	best := map[sensitivity.Class]string{}
	bestDelay := map[sensitivity.Class]time.Duration{}
	for i := range res.Curves {
		c := &res.Curves[i]
		cl := classes[c.Message]
		last := c.Points[len(c.Points)-1].Delay
		if last == rta.Unschedulable {
			continue
		}
		if cur, ok := bestDelay[cl]; !ok || last > cur {
			best[cl] = c.Message
			bestDelay[cl] = last
		}
	}
	var out []string
	for _, cl := range []sensitivity.Class{
		sensitivity.Robust, sensitivity.Medium,
		sensitivity.Sensitive, sensitivity.VerySensitive,
	} {
		if name, ok := best[cl]; ok {
			out = append(out, name)
		}
	}
	return out
}

// Series converts the selected curves to chart series.
func (f *Figure4) Series() []report.Series {
	glyphs := []rune{'o', '+', '*', '@'}
	var out []report.Series
	for i, name := range f.Selected {
		c := f.Sweep.CurveByName(name)
		s := report.Series{
			Name:  fmt.Sprintf("%s (%s)", name, f.Classes[name]),
			Glyph: glyphs[i%len(glyphs)],
		}
		for _, p := range c.Points {
			s.X = append(s.X, p.Scale*100)
			s.Y = append(s.Y, float64(p.Delay)/float64(time.Millisecond))
		}
		out = append(out, s)
	}
	return out
}

// WriteCSV emits the selected curves as CSV (jitter % vs. delay in ms).
func (f *Figure4) WriteCSV(w io.Writer) error {
	series := f.Series()
	xs := make([]float64, 0, len(f.Sweep.Scales))
	for _, s := range f.Sweep.Scales {
		xs = append(xs, 100*s)
	}
	return report.WriteSeriesCSV(w, "jitter_percent", xs, series)
}

// Render produces the chart plus the class tally.
func (f *Figure4) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4 — jitter-sensitive and robust messages\n\n")
	b.WriteString(report.Chart("worst-case delay vs. jitter",
		"jitter in % of message period", "response time in ms",
		ChartWidth, ChartHeight, f.Series()))
	b.WriteString("\n")
	var rows [][]string
	classes := []sensitivity.Class{
		sensitivity.Robust, sensitivity.Medium,
		sensitivity.Sensitive, sensitivity.VerySensitive,
	}
	for _, cl := range classes {
		rows = append(rows, []string{cl.String(), fmt.Sprint(f.Counts[cl])})
	}
	b.WriteString(report.Table([]string{"class", "messages"}, rows))

	// The per-class growth summary, sorted for determinism.
	names := make([]string, 0, len(f.Classes))
	for n := range f.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	sensitive := 0
	for _, n := range names {
		if f.Classes[n] >= sensitivity.Sensitive {
			sensitive++
		}
	}
	fmt.Fprintf(&b, "\n%d of %d messages are sensitive or worse; their jitters become\nsupplier requirements (see Figure 6).\n",
		sensitive, len(names))
	return b.String()
}
