package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// CampaignParams tunes the population-scale study; the zero value runs
// the default 500-scenario corpus.
type CampaignParams struct {
	// Spec parameterises the corpus (scenario.Spec zero value selects
	// the default population).
	Spec scenario.Spec
	// Config parameterises the engine (workers, simulation fan,
	// store budget).
	Config campaign.Config
	// Quick shrinks the corpus to 64 scenarios with a halved
	// simulation span — the CI-friendly variant.
	Quick bool
	// Context, when set, bounds the run and carries observability state
	// (an obs trace records the campaign's spans). Nil means Background.
	Context context.Context
}

// RunCampaign generates the corpus and drives the sharded campaign
// engine over it — the population-scale counterpart of the single
// case-study experiments: instead of one proprietary-matrix
// substitute, a whole randomized population of integrations is
// analysed, cross-validated and perturbed. The generated corpus is
// returned alongside the report so callers can encode its canonical
// listing without regenerating it.
func RunCampaign(p CampaignParams) (*campaign.Report, *scenario.Corpus, error) {
	if p.Quick {
		if p.Spec.Count == 0 {
			p.Spec.Count = 64
		}
		if p.Config.Duration == 0 {
			p.Config.Duration = 100 * time.Millisecond
		}
	}
	corpus, err := scenario.Generate(p.Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: %w", err)
	}
	ctx := p.Context
	if ctx == nil {
		ctx = context.Background()
	}
	job, err := campaign.NewJob(corpus, p.Config)
	if err != nil {
		return nil, nil, err
	}
	rep, err := job.Run(ctx)
	if err != nil {
		return nil, nil, err
	}
	return rep, corpus, nil
}
