package experiments

import (
	"strings"
	"testing"
)

func TestFigure4CSV(t *testing.T) {
	f, err := RunFigure4()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Header plus one row per sweep scale.
	if want := 1 + len(f.Sweep.Scales); len(lines) != want {
		t.Fatalf("csv has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "jitter_percent,") {
		t.Errorf("header = %q", lines[0])
	}
	// One column per selected curve plus the x column.
	if got, want := strings.Count(lines[0], ","), len(f.Selected); got != want {
		t.Errorf("header has %d commas, want %d", got, want)
	}
}

func TestFigure5CSV(t *testing.T) {
	f, err := RunFigure5(Figure5Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "jitter_percent,best case,worst case,optimized best case,optimized worst case\n") {
		t.Errorf("header wrong: %q", strings.SplitN(out, "\n", 2)[0])
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := 1 + len(f.Best); len(lines) != want {
		t.Fatalf("csv has %d lines, want %d", len(lines), want)
	}
	// The zero-jitter row must be all zeros.
	if lines[1] != "0,0,0,0,0" {
		t.Errorf("zero-jitter row = %q", lines[1])
	}
}
