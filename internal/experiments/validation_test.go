package experiments

import (
	"testing"
	"time"

	"repro/internal/rta"
	"repro/internal/sim"
)

// TestSimulationNeverExceedsAnalysisOnCaseStudy is the repository's
// central soundness check at full scale: on the 88-message case-study
// matrix, across several seeds and jitter levels, no simulated response
// may exceed the analytic worst case. This is the property that lets
// the paper replace test equipment with analysis.
func TestSimulationNeverExceedsAnalysisOnCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation test")
	}
	for _, scale := range []float64{0, 0.25} {
		k := DefaultMatrix().WithJitterScale(scale, false)
		cfg := rta.Config{Bus: k.Bus()} // worst-case stuffing, no errors
		rep, err := rta.Analyze(k.ToRTA(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]sim.MessageSpec, len(k.Messages))
		for i, m := range k.Messages {
			specs[i] = sim.MessageSpec{
				Name: m.Name, Frame: m.Frame(), Event: m.EventModel(), Node: m.Sender,
			}
		}
		for seed := int64(1); seed <= 3; seed++ {
			res, err := sim.Run(specs, sim.Config{
				Bus: k.Bus(), Duration: 5 * time.Second, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range res.Stats {
				bound := rep.ByName(st.Name).WCRT
				if bound == rta.Unschedulable {
					continue
				}
				if st.MaxResponse > bound {
					t.Errorf("scale %.2f seed %d: %s observed %v > bound %v",
						scale, seed, st.Name, st.MaxResponse, bound)
				}
			}
			// The bound must also be reasonably tight for the bus to be
			// considered modelled, not just padded: the busiest message
			// should reach a meaningful fraction of its bound.
			var bestRatio float64
			for _, st := range res.Stats {
				bound := rep.ByName(st.Name).WCRT
				if bound == rta.Unschedulable || st.Sent == 0 {
					continue
				}
				if r := float64(st.MaxResponse) / float64(bound); r > bestRatio {
					bestRatio = r
				}
			}
			if bestRatio < 0.25 {
				t.Errorf("scale %.2f seed %d: tightest observed/bound ratio %.2f — bound looks padded",
					scale, seed, bestRatio)
			}
		}
	}
}

// TestFiguresAreDeterministic pins the exact rendering of the cheap
// figures across runs — the experiment harness must be reproducible.
func TestFiguresAreDeterministic(t *testing.T) {
	if r1, r2 := RunFigure1().Render(), RunFigure1().Render(); r1 != r2 {
		t.Error("Figure 1 not deterministic")
	}
	f4a, err := RunFigure4()
	if err != nil {
		t.Fatal(err)
	}
	f4b, err := RunFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if f4a.Render() != f4b.Render() {
		t.Error("Figure 4 not deterministic")
	}
}
