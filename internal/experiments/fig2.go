package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/can"
	"repro/internal/eventmodel"
	"repro/internal/report"
	"repro/internal/sim"
)

// Figure2 reproduces the paper's "complex communication patterns"
// trace: three messages with jitter, one bursting, plus injected bus
// errors with retransmissions, simulated on a 500 kbit/s bus.
type Figure2 struct {
	// Result is the raw simulation outcome.
	Result *sim.Result
	// Specs echoes the scenario.
	Specs []sim.MessageSpec
	// Window is the rendered trace span.
	Window time.Duration
}

// RunFigure2 simulates the trace scenario. The seed is fixed; the
// figure is deterministic.
func RunFigure2() (*Figure2, error) {
	ms := time.Millisecond
	specs := []sim.MessageSpec{
		{
			Name:  "brake",
			Frame: can.Frame{ID: 0x090, Format: can.Standard11Bit, DLC: 6},
			Event: eventmodel.PeriodicJitter(5*ms, 1*ms),
			Node:  "ECU1",
		},
		{
			Name:  "engine",
			Frame: can.Frame{ID: 0x120, Format: can.Standard11Bit, DLC: 8},
			// A bursting stream: jitter beyond the period with 400us
			// intra-burst spacing — the "burst" annotation of Figure 2.
			Event: eventmodel.PeriodicBurst(8*ms, 18*ms, 400*time.Microsecond),
			Node:  "ECU2",
		},
		{
			Name:  "gearbox",
			Frame: can.Frame{ID: 0x200, Format: can.Standard11Bit, DLC: 8},
			Event: eventmodel.PeriodicJitter(10*ms, 2*ms),
			Node:  "ECU3",
		},
	}
	cfg := sim.Config{
		Bus:      can.Bus{Name: "trace", BitRate: can.Rate500k},
		Duration: 60 * ms,
		Seed:     7,
		Stuffing: sim.StuffRandom,
		// Two injected errors: one mid-window, one in a burst phase.
		Errors:      []time.Duration{11200 * time.Microsecond, 24100 * time.Microsecond},
		RecordTrace: true,
	}
	res, err := sim.Run(specs, cfg)
	if err != nil {
		return nil, err
	}
	return &Figure2{Result: res, Specs: specs, Window: cfg.Duration}, nil
}

// Render produces the Gantt trace plus per-message statistics.
func (f *Figure2) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2 — message jitters, bursts and errors on the bus\n\n")
	names := make([]string, len(f.Specs))
	for i, s := range f.Specs {
		names[i] = s.Name
	}
	b.WriteString(report.Gantt(f.Result.Trace, names, 0, f.Window, 96))
	b.WriteString("\n")
	rows := make([][]string, 0, len(f.Result.Stats))
	for _, st := range f.Result.Stats {
		rows = append(rows, []string{
			st.Name,
			fmt.Sprint(st.Released),
			fmt.Sprint(st.Sent),
			fmt.Sprint(st.Retransmissions),
			st.MinResponse.String(),
			st.MaxResponse.String(),
		})
	}
	b.WriteString(report.Table(
		[]string{"message", "released", "sent", "retransmits", "min resp", "max resp"}, rows))
	fmt.Fprintf(&b, "\nbus utilisation over the window: %.1f%%, injected errors hitting frames: %d\n",
		100*f.Result.Utilization(), f.Result.Errors)
	return b.String()
}
