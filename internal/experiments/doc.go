// Package experiments contains one driver per figure of the paper. Each
// driver returns structured data plus a Render method producing the
// text/chart form; the CLI (cmd/symtago), the benchmark harness
// (bench_test.go) and EXPERIMENTS.md all run the same code.
//
// The case-study workload is the synthetic power-train matrix of
// package kmatrix (seed 1), substituting for the paper's proprietary
// K-Matrix; see DESIGN.md for the substitution argument.
//
// Scenario conventions, fixed across all experiments:
//
//   - Best case (the paper's "ignoring bus errors"): nominal frame
//     lengths, no errors.
//   - Worst case: worst-case bit stuffing plus the Punnekkat-style burst
//     error model (bursts of 3 errors, 100us apart, recurring every
//     10ms).
//   - Loss criterion (both cases): an instance is lost when it is still
//     in the sender buffer as its successor arrives. With the jittered
//     response R measured from the nominal activation this is exactly
//     R > T — the "minimum re-arrival time as a deadline" of the paper,
//     expressed at the nominal instant (rta.DeadlineImplicit).
package experiments
