package experiments

import "testing"

func TestIterationLoop(t *testing.T) {
	l, err := RunIterationLoop(IterationLoopParams{Variants: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Verified {
		t.Fatal("incremental reports were not bit-identical to full analyses")
	}
	if l.Reanalysed >= l.FullWork {
		t.Fatalf("no work avoided: %d analysed of %d full", l.Reanalysed, l.FullWork)
	}
	if l.Reused == 0 {
		t.Fatal("no results reused")
	}
	if l.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestIterationLoopDeterministic(t *testing.T) {
	a, err := RunIterationLoop(IterationLoopParams{Variants: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIterationLoop(IterationLoopParams{Variants: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
