package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/can"
	"repro/internal/report"
	"repro/internal/rta"
	"repro/internal/sim"
)

// MonteCarlo is the scaled-up cross-validation experiment: the
// case-study matrix simulated under many seeds on the batch layer, every
// observed response checked against the analytic worst-case bound. The
// paper's claim that analysis can replace test equipment rests on the
// bound never being beaten, no matter how much (simulated) test time is
// thrown at the bus; this driver throws hardware-saturating amounts.
type MonteCarlo struct {
	// Seeds is the number of simulated runs.
	Seeds int
	// Duration is the simulated span per run.
	Duration time.Duration
	// Controller is the simulated buffer organisation.
	Controller sim.ControllerType
	// Violations counts observed responses beyond the analytic bound
	// (must be zero for fullCAN, the organisation the analysis models).
	Violations int
	// TightestMarginPct is the smallest remaining margin observed, in
	// percent of the bound: how close simulation came to the worst case.
	TightestMarginPct float64
	// TightestMessage is the message with the tightest margin.
	TightestMessage string
	// TotalFrames counts frames delivered across all runs.
	TotalFrames int
}

// MonteCarloParams tunes the run; the zero value is the full experiment.
type MonteCarloParams struct {
	// Seeds is the number of runs (default 64).
	Seeds int
	// Duration is the simulated span per run (default 2s).
	Duration time.Duration
	// Controller selects the buffer organisation (default fullCAN, the
	// organisation whose responses the analysis bounds).
	Controller sim.ControllerType
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
}

// RunMonteCarlo fans the simulations over the batch layer and the bound
// computation over the parallel analyzer, then folds the observations.
func RunMonteCarlo(p MonteCarloParams) (*MonteCarlo, error) {
	if p.Seeds <= 0 {
		p.Seeds = 64
	}
	if p.Duration <= 0 {
		p.Duration = 2 * time.Second
	}
	k := DefaultMatrix()

	// Analytic bounds under the same assumptions the simulation draws
	// from (worst-case stuffing dominates every random draw; no errors).
	rep, err := rta.AnalyzeParallel(k.ToRTA(), rta.Config{
		Bus: k.Bus(), Stuffing: can.StuffingWorstCase, DeadlineModel: rta.DeadlineImplicit,
	}, p.Workers)
	if err != nil {
		return nil, err
	}

	specs := make([]sim.MessageSpec, len(k.Messages))
	for i, m := range k.Messages {
		specs[i] = sim.MessageSpec{Name: m.Name, Frame: m.Frame(), Event: m.EventModel(), Node: m.Sender}
	}
	seeds := make([]int64, p.Seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	results, err := sim.RunSeeds(specs, sim.Config{
		Bus: k.Bus(), Duration: p.Duration, Controller: p.Controller,
	}, seeds, p.Workers)
	if err != nil {
		return nil, err
	}

	mc := &MonteCarlo{
		Seeds: p.Seeds, Duration: p.Duration, Controller: p.Controller,
		TightestMarginPct: 100,
	}
	for _, res := range results {
		for _, st := range res.Stats {
			mc.TotalFrames += st.Sent
			r := rep.ByName(st.Name)
			if r == nil || r.WCRT == rta.Unschedulable || st.Sent == 0 {
				continue
			}
			if st.MaxResponse > r.WCRT {
				mc.Violations++
				continue
			}
			margin := 100 * float64(r.WCRT-st.MaxResponse) / float64(r.WCRT)
			if margin < mc.TightestMarginPct {
				mc.TightestMarginPct = margin
				mc.TightestMessage = st.Name
			}
		}
	}
	return mc, nil
}

// Render summarises the validation outcome.
func (m *MonteCarlo) Render() string {
	var b strings.Builder
	b.WriteString("Monte-Carlo cross-validation — simulation vs. worst-case analysis\n\n")
	rows := [][]string{
		{"runs x duration", fmt.Sprintf("%d x %v (%s)", m.Seeds, m.Duration, m.Controller)},
		{"frames delivered", fmt.Sprint(m.TotalFrames)},
		{"bound violations", fmt.Sprint(m.Violations)},
		{"tightest margin", fmt.Sprintf("%.1f%% (%s)", m.TightestMarginPct, m.TightestMessage)},
	}
	b.WriteString(report.Table([]string{"quantity", "value"}, rows))
	if m.Violations == 0 {
		b.WriteString("\nNo simulated response exceeded its analytic bound: the analysis\ndominates simulation, the precondition for replacing test equipment.\n")
	} else {
		b.WriteString("\nWARNING: simulated responses exceeded the analytic bound.\n")
	}
	return b.String()
}
