package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/eventmodel"
	"repro/internal/osek"
	"repro/internal/supplychain"
)

// Figure6 reproduces the duality of requirements and guarantees: the
// OEM requires send jitters and guarantees arrival timing; the supplier
// guarantees send jitters and requires arrival timing. The experiment
// runs one refinement iteration: the supplier's first ECU design
// violates the OEM's requirement, the supplier re-prioritises, and the
// second design closes the loop in both directions.
type Figure6 struct {
	// Steps records the transcript of the exchange.
	Steps []Figure6Step
	// FirstCheck and SecondCheck are the OEM-side requirement checks
	// against the two supplier designs.
	FirstCheck, SecondCheck supplychain.CheckReport
	// ArrivalCheck is the supplier-side check of the OEM's delivery
	// guarantees.
	ArrivalCheck supplychain.CheckReport
}

// Figure6Step is one transcript line.
type Figure6Step struct {
	// Actor is "OEM" or the supplier.
	Actor string
	// Action describes the exchange step.
	Action string
}

// RunFigure6 executes the contract exchange on the case-study matrix.
func RunFigure6() (*Figure6, error) {
	ms := time.Millisecond
	us := time.Microsecond
	f := &Figure6{}
	k := DefaultMatrix()

	// The OEM picks a sensitive fast message sent by ECU1 and requires
	// its send jitter to stay within 10% of the period.
	var target string
	for _, m := range k.Messages {
		if m.Sender == "ECU1" && m.Period <= 20*ms {
			target = m.Name
			break
		}
	}
	if target == "" {
		return nil, fmt.Errorf("experiments: no fast ECU1 message in the matrix")
	}
	oemSpec := supplychain.OEMSendRequirements(k, 0.10, map[string]bool{target: true})
	f.step("OEM", fmt.Sprintf("requires send jitter of %s within 10%% of its period (sensitivity analysis, Fig. 4)", target))

	period := k.ByName(target).Period

	// Supplier design 1: the producing task sits at low priority under a
	// heavy preemptive load — its response jitter is large.
	design1 := []osek.Task{
		{Name: "io", Priority: 3, WCET: 2 * ms, BCET: 1800 * us,
			Event: eventmodel.Periodic(5 * ms), Kind: osek.Preemptive},
		{Name: "producer", Priority: 1, WCET: 500 * us, BCET: 400 * us,
			Event: eventmodel.Periodic(period), Kind: osek.Preemptive},
		{Name: "diag", Priority: 2, WCET: 1 * ms, BCET: 900 * us,
			Event: eventmodel.Periodic(10 * ms), Kind: osek.Preemptive},
	}
	ds1, err := supplychain.SupplierSendGuarantees("ECU1-supplier", design1,
		map[string]string{"producer": target}, osek.Config{})
	if err != nil {
		return nil, err
	}
	f.FirstCheck = supplychain.Check(ds1, oemSpec)
	f.step("ECU1-supplier", fmt.Sprintf("publishes data sheet from ECU analysis: send model %v", ds1.Entries[0].Event))
	f.step("OEM", fmt.Sprintf("checks data sheet against requirement: %s", f.FirstCheck.String()))
	if f.FirstCheck.OK() {
		return nil, fmt.Errorf("experiments: first design unexpectedly satisfies the requirement")
	}

	// Refinement: the supplier raises the producer's priority — an
	// internal change; only the new guarantee crosses the interface.
	design2 := make([]osek.Task, len(design1))
	copy(design2, design1)
	design2[1].Priority = 4
	ds2, err := supplychain.SupplierSendGuarantees("ECU1-supplier", design2,
		map[string]string{"producer": target}, osek.Config{})
	if err != nil {
		return nil, err
	}
	f.SecondCheck = supplychain.Check(ds2, oemSpec)
	f.step("ECU1-supplier", fmt.Sprintf("re-prioritises internally (IP stays hidden), new send model %v", ds2.Entries[0].Event))
	f.step("OEM", fmt.Sprintf("re-checks: %s", f.SecondCheck.String()))
	if !f.SecondCheck.OK() {
		return nil, fmt.Errorf("experiments: refined design still violates: %s", f.SecondCheck.String())
	}

	// The OEM commits the guaranteed jitter to the matrix, analyses the
	// bus and publishes arrival guarantees; a consuming supplier checks
	// them against its algorithm needs.
	k.ByName(target).Jitter = ds2.Entries[0].Event.Jitter
	k.ByName(target).JitterKnown = true
	oemDS, err := supplychain.OEMDeliveryGuarantees(k, BestCaseAnalysis())
	if err != nil {
		return nil, err
	}
	needs := map[string]supplychain.ArrivalNeed{
		target: {MaxJitter: period / 2, MaxAge: period},
	}
	consumerSpec := supplychain.SupplierArrivalRequirements("ECU3-supplier", k, needs)
	f.ArrivalCheck = supplychain.Check(oemDS, consumerSpec)
	f.step("OEM", fmt.Sprintf("guarantees arrival timing from bus analysis: %v, latency <= %v",
		oemDS.ByMessage(target).Event, oemDS.ByMessage(target).MaxLatency))
	f.step("ECU3-supplier", fmt.Sprintf("checks arrival guarantee against algorithm needs: %s", f.ArrivalCheck.String()))
	if !f.ArrivalCheck.OK() {
		return nil, fmt.Errorf("experiments: arrival guarantees insufficient: %s", f.ArrivalCheck.String())
	}
	return f, nil
}

func (f *Figure6) step(actor, action string) {
	f.Steps = append(f.Steps, Figure6Step{Actor: actor, Action: action})
}

// Render produces the transcript.
func (f *Figure6) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6 — duality of requirements and guarantees (OEM <-> suppliers)\n\n")
	for i, s := range f.Steps {
		fmt.Fprintf(&b, "%d. [%s] %s\n", i+1, s.Actor, s.Action)
	}
	b.WriteString("\nWhat is initially assumed and required is later guaranteed, and vice\nversa — without disclosing task priorities or gateway internals.\n")
	return b.String()
}
