package cacheserver

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/contenthash"
	"repro/internal/obs"
)

// Server serves the remote cache protocol over a shared cache.Disk:
//
//	GET  /cache/{digest}  the record bytes, or 404
//	HEAD /cache/{digest}  existence probe (no body)
//	PUT  /cache/{digest}  store a record (204; idempotent)
//	GET  /healthz         liveness + served counts
//	GET  /metrics         Prometheus text exposition
//
// The digest is the 32-hex content hash; the body is the versioned
// crc-framed record format of cache.Disk, passed through byte-for-byte.
// A PUT that fails validation (bad magic, version skew, crc mismatch,
// undecodable payload) is refused with 422 — the store only ever holds
// records every fleet member can read. Create with New, expose with
// Handler; Server is safe for concurrent use.
type Server struct {
	disk  *cache.Disk
	start time.Time

	getHits, getMisses   atomic.Uint64
	headHits, headMisses atomic.Uint64
	putStored            atomic.Uint64
	putRejected          atomic.Uint64
	badRequests          atomic.Uint64
	bytesRead            atomic.Uint64
	bytesWritten         atomic.Uint64
}

// New returns a Server over disk.
func New(disk *cache.Disk) *Server {
	return &Server{disk: disk, start: time.Now()}
}

// Disk returns the backing store.
func (s *Server) Disk() *cache.Disk { return s.disk }

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// "GET" patterns also match HEAD in net/http's mux; handleGet
	// dispatches on the method.
	mux.HandleFunc("GET "+cache.RecordPathPrefix+"{key}", s.handleGet)
	mux.HandleFunc("PUT "+cache.RecordPathPrefix+"{key}", s.handlePut)
	mux.HandleFunc("GET "+cache.HealthPathRemote, s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// key parses the digest path segment, answering 400 itself on failure.
func (s *Server) key(w http.ResponseWriter, r *http.Request) (contenthash.Digest, bool) {
	d, ok := contenthash.ParseDigest(r.PathValue("key"))
	if !ok {
		s.badRequests.Add(1)
		http.Error(w, "bad digest: want 32 hex characters", http.StatusBadRequest)
	}
	return d, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.key(w, r)
	if !ok {
		return
	}
	if r.Method == http.MethodHead {
		if s.disk.HasRecord(key) {
			s.headHits.Add(1)
			w.WriteHeader(http.StatusOK)
		} else {
			s.headMisses.Add(1)
			w.WriteHeader(http.StatusNotFound)
		}
		return
	}
	rec, found := s.disk.GetRecord(key)
	if !found {
		s.getMisses.Add(1)
		http.Error(w, "no record", http.StatusNotFound)
		return
	}
	s.getHits.Add(1)
	s.bytesWritten.Add(uint64(len(rec)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(rec)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.key(w, r)
	if !ok {
		return
	}
	rec, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cache.MaxRecordBytes))
	if err != nil {
		s.badRequests.Add(1)
		// 413 is reserved for oversize — a permanent refusal the client
		// must not retry. Any other read failure (client abort mid-body,
		// connection reset) says nothing about the record.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "record too large", http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, "unreadable request body", http.StatusBadRequest)
		}
		return
	}
	s.bytesRead.Add(uint64(len(rec)))
	// Full validation — framing, crc AND codec payload — so the store
	// only ever holds records any fleet member can decode. crc alone
	// would accept a well-framed payload of garbage.
	if _, err := cache.DecodeRecord(rec); err != nil {
		s.putRejected.Add(1)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if err := s.disk.PutRecord(key, rec); err != nil {
		s.putRejected.Add(1)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.putStored.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.disk.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":  "ok",
		"entries": st.Entries,
		"bytes":   st.Bytes,
		"hits":    s.getHits.Load(),
		"misses":  s.getMisses.Load(),
		"stored":  s.putStored.Load(),
	})
}

// handleMetrics emits the cacheserver's Prometheus families: request
// outcomes by method, wire volume, and the backing disk store's
// counters — including the corrupt-record quarantine count, which is
// how a fleet notices records rotting on the shared tier.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewProm(w)

	p.Family("symtago_cacheserver_uptime_seconds", "gauge", "Seconds since the cacheserver started.")
	p.Value("symtago_cacheserver_uptime_seconds", nil, time.Since(s.start).Seconds())

	p.Family("symtago_cacheserver_requests_total", "counter", "Record requests by method and outcome.")
	for _, m := range []struct {
		method, outcome string
		v               uint64
	}{
		{"get", "hit", s.getHits.Load()},
		{"get", "miss", s.getMisses.Load()},
		{"head", "hit", s.headHits.Load()},
		{"head", "miss", s.headMisses.Load()},
		{"put", "stored", s.putStored.Load()},
		{"put", "rejected", s.putRejected.Load()},
	} {
		p.Uint("symtago_cacheserver_requests_total",
			obs.Labels{"method", m.method, "outcome", m.outcome}, m.v)
	}
	p.Family("symtago_cacheserver_bad_requests_total", "counter", "Requests refused before reaching the store.")
	p.Uint("symtago_cacheserver_bad_requests_total", nil, s.badRequests.Load())
	p.Family("symtago_cacheserver_bytes_read_total", "counter", "Record bytes received in PUTs.")
	p.Uint("symtago_cacheserver_bytes_read_total", nil, s.bytesRead.Load())
	p.Family("symtago_cacheserver_bytes_written_total", "counter", "Record bytes served in GETs.")
	p.Uint("symtago_cacheserver_bytes_written_total", nil, s.bytesWritten.Load())

	st := s.disk.Stats()
	p.Family("symtago_cacheserver_disk_entries", "gauge", "Resident records in the backing store.")
	p.Uint("symtago_cacheserver_disk_entries", nil, uint64(st.Entries))
	p.Family("symtago_cacheserver_disk_bytes", "gauge", "Resident record bytes in the backing store.")
	p.Uint("symtago_cacheserver_disk_bytes", nil, uint64(st.Bytes))
	p.Family("symtago_cacheserver_disk_max_bytes", "gauge", "Backing store byte budget.")
	p.Uint("symtago_cacheserver_disk_max_bytes", nil, uint64(st.MaxBytes))
	p.Family("symtago_cacheserver_disk_hits_total", "counter", "Backing store hits.")
	p.Uint("symtago_cacheserver_disk_hits_total", nil, st.Hits)
	p.Family("symtago_cacheserver_disk_misses_total", "counter", "Backing store misses.")
	p.Uint("symtago_cacheserver_disk_misses_total", nil, st.Misses)
	p.Family("symtago_cacheserver_disk_evictions_total", "counter", "Records deleted by the size-bounded GC.")
	p.Uint("symtago_cacheserver_disk_evictions_total", nil, st.Evictions)
	p.Family("symtago_cacheserver_disk_corrupt_total", "counter", "Records quarantined as unreadable (truncation, crc mismatch, version skew).")
	p.Uint("symtago_cacheserver_disk_corrupt_total", nil, st.Corrupt)
}
