// Package cacheserver is the fleet-shared end of the cache hierarchy:
// a content-addressed HTTP service over a cache.Disk store, speaking
// the minimal GET/PUT/HEAD record protocol that cache.Remote consumes.
// Records travel as the exact versioned crc-framed bytes Disk persists,
// verified on both ends, so a fleet of workers analyzes each popular
// K-Matrix configuration once and shares the converged result by
// content hash — the paper's many-suppliers-one-verification workflow
// (Section 4) as infrastructure. Invalid or skewed records are refused
// on write and quarantined on read; the client treats every degraded
// answer as a miss, so the service can never change an analysis byte.
package cacheserver
