package cacheserver

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/contenthash"
	"repro/internal/rta"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	disk, err := cache.NewDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(disk)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func testDigest(x uint64) contenthash.Digest {
	h := contenthash.New(99)
	h.Word(x)
	return h.Sum()
}

func sampleValue() *rta.Result {
	return &rta.Result{Priority: 5, C: 100 * time.Microsecond, WCRT: 2 * time.Millisecond}
}

// TestServerClientRoundTrip is the real client against the real
// server: PUT through cache.Remote's write-behind, GET from a second
// client, byte-identical record on disk.
func TestServerClientRoundTrip(t *testing.T) {
	srv, ts := newTestServer(t)
	w, err := cache.NewRemote(cache.RemoteConfig{BaseURL: ts.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleValue()
	key := testDigest(1)
	w.Put(key, want)
	w.Close()

	r, err := cache.NewRemote(cache.RemoteConfig{BaseURL: ts.URL, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, ok := r.Get(key)
	if !ok {
		t.Fatal("miss after flushed Put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("round trip through the real server changed the value")
	}
	if _, ok := r.Get(testDigest(2)); ok {
		t.Fatal("hit for a never-stored key")
	}
	if srv.Disk().Stats().Entries != 1 {
		t.Fatalf("server disk entries = %d", srv.Disk().Stats().Entries)
	}
}

// TestServerProtocol pins the raw HTTP surface: HEAD probes, bad
// digests, unvalidatable records, oversize bodies, idempotent PUT.
func TestServerProtocol(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	key := testDigest(7)
	rec, ok := cache.EncodeRecord(sampleValue())
	if !ok {
		t.Fatal("EncodeRecord refused a sample value")
	}
	url := ts.URL + cache.RecordPathPrefix + key.String()

	do := func(method, u string, body []byte) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, u, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := do(http.MethodHead, url, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD of absent record: %d", resp.StatusCode)
	}
	if resp := do(http.MethodGet, url, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET of absent record: %d", resp.StatusCode)
	}
	if resp := do(http.MethodPut, url, rec); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %d", resp.StatusCode)
	}
	// Idempotent: storing the same record again succeeds.
	if resp := do(http.MethodPut, url, rec); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("second PUT: %d", resp.StatusCode)
	}
	if resp := do(http.MethodHead, url, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD of present record: %d", resp.StatusCode)
	}
	resp := do(http.MethodGet, url, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(raw, rec) {
		t.Fatal("served record differs from the stored bytes")
	}

	// Bad digests never reach the store.
	for _, bad := range []string{"nothex", "abc", strings.Repeat("g", 32), strings.Repeat("ab", 17)} {
		if resp := do(http.MethodGet, ts.URL+cache.RecordPathPrefix+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %q: %d, want 400", bad, resp.StatusCode)
		}
	}
	// A well-framed record of garbage (valid crc over an undecodable
	// payload) is refused: the store only holds decodable records.
	mangled := append([]byte(nil), rec...)
	mangled[len(mangled)-1] ^= 0xFF
	if resp := do(http.MethodPut, ts.URL+cache.RecordPathPrefix+testDigest(8).String(), mangled); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("PUT of corrupt record: %d, want 422", resp.StatusCode)
	}
	// Oversize bodies are cut off.
	huge := make([]byte, cache.MaxRecordBytes+1)
	if resp := do(http.MethodPut, ts.URL+cache.RecordPathPrefix+testDigest(9).String(), huge); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize PUT: %d, want 413", resp.StatusCode)
	}
}

// TestServerMetrics: the Prometheus exposition carries the request
// outcomes and — after a record rots on disk — the quarantine counter.
func TestServerMetrics(t *testing.T) {
	srv, ts := newTestServer(t)
	client := ts.Client()
	key := testDigest(3)
	rec, _ := cache.EncodeRecord(sampleValue())
	req, _ := http.NewRequest(http.MethodPut, ts.URL+cache.RecordPathPrefix+key.String(), bytes.NewReader(rec))
	if resp, err := client.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT failed: %v %v", err, resp)
	}
	client.Get(ts.URL + cache.RecordPathPrefix + key.String())           // hit
	client.Get(ts.URL + cache.RecordPathPrefix + testDigest(4).String()) // miss
	client.Get(ts.URL + cache.RecordPathPrefix + "zzz")                  // bad request
	if resp, err := client.Get(ts.URL + cache.HealthPathRemote); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}

	// Rot the record on disk; the next GET quarantines it.
	dir := srv.Disk().Dir()
	path := filepath.Join(dir, key.String()[:2], key.String()+".rec")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if resp, _ := client.Get(ts.URL + cache.RecordPathPrefix + key.String()); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET of rotted record: %d, want 404 (quarantined)", resp.StatusCode)
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`symtago_cacheserver_requests_total{method="get",outcome="hit"} 1`,
		`symtago_cacheserver_requests_total{method="get",outcome="miss"} 2`,
		`symtago_cacheserver_requests_total{method="put",outcome="stored"} 1`,
		`symtago_cacheserver_bad_requests_total 1`,
		`symtago_cacheserver_disk_corrupt_total 1`,
		"symtago_cacheserver_uptime_seconds",
		"symtago_cacheserver_bytes_written_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
