// Package can models the Controller Area Network protocol details that
// worst-case timing analysis depends on: frame formats, identifiers,
// bit-stuffing bounds, wire transmission times, and the fixed-priority
// non-preemptive arbitration rule.
//
// The package is deliberately free of scheduling theory; it answers only
// "how long does this frame occupy the bus" and "who wins arbitration".
// Response-time analysis builds on it in package rta, and the
// discrete-event simulator in package sim.
//
// Bit counts follow the CAN 2.0 specification in the notation of
// Davis, Burns, Bril and Lukkien, "Controller Area Network (CAN)
// schedulability analysis: Refuted, revisited and revised" (2007):
// a standard (11-bit identifier) data frame with s payload bytes occupies
//
//	47 + 8s bits                         without stuff bits, and
//	47 + 8s + floor((34+8s-1)/4) bits    in the worst case,
//
// because only 34+8s bits of the frame are subject to stuffing. Extended
// (29-bit identifier) frames occupy 67+8s and 67+8s+floor((54+8s-1)/4)
// bits respectively.
//
// In the source paper this is the substrate of Section 2: the CAN
// networks whose integration the OEM must verify, where "the worst-case
// load situations cannot be tested" and protocol-level detail (stuffing,
// arbitration) decides schedulability.
package can
