package can

import (
	"fmt"
	"time"
)

// Standard CAN bit rates in bits per second.
const (
	Rate125k = 125_000
	Rate250k = 250_000
	Rate500k = 500_000
	Rate1M   = 1_000_000
)

// Bus describes the physical bus: its name and bit rate. All timing
// analysis converts frame bit counts to durations through the bus.
type Bus struct {
	// Name identifies the bus in reports (e.g. "powertrain").
	Name string
	// BitRate is the nominal bit rate in bits per second.
	BitRate int
}

// Validate reports whether the bus parameters are usable.
func (b Bus) Validate() error {
	if b.BitRate <= 0 {
		return fmt.Errorf("can: bus %q has non-positive bit rate %d", b.Name, b.BitRate)
	}
	return nil
}

// BitTime returns the duration of a single bit on the bus.
func (b Bus) BitTime() time.Duration {
	return time.Duration(int64(time.Second) / int64(b.BitRate))
}

// WireTime returns the bus occupation of the given number of bits.
func (b Bus) WireTime(bits int) time.Duration {
	return time.Duration(bits) * b.BitTime()
}

// FrameTime returns the bus occupation of a frame under the given
// stuffing assumption.
func (b Bus) FrameTime(f Frame, s Stuffing) time.Duration {
	return b.WireTime(f.Bits(s))
}

// ErrorOverheadTime returns the worst-case bus occupation of one error
// signalling sequence (error frame plus recovery), excluding the
// retransmission itself.
func (b Bus) ErrorOverheadTime() time.Duration {
	return b.WireTime(ErrorFrameBits)
}
