package can

import "fmt"

// Overheads of the CAN data frame in bits. The stuffable region runs from
// the start-of-frame bit through the CRC sequence; the tail (CRC delimiter,
// ACK slot and delimiter, end-of-frame, interframe space) is sent without
// stuffing.
const (
	standardOverheadBits  = 47 // total non-payload bits, standard frame
	extendedOverheadBits  = 67 // total non-payload bits, extended frame
	standardStuffableBits = 34 // non-payload bits subject to stuffing, standard
	extendedStuffableBits = 54 // non-payload bits subject to stuffing, extended

	// ErrorFrameBits is the worst-case bus occupation of error signalling:
	// up to 6+6 error-flag bits, 8 delimiter bits and the 3-bit interframe
	// space preceding the retransmission, plus resynchronisation slack.
	// The value 31 is the bound used by Tindell and Burns (1994) and all
	// follow-up CAN error analyses.
	ErrorFrameBits = 31

	// MaxPayload is the largest CAN 2.0 payload in bytes.
	MaxPayload = 8
)

// Frame describes a CAN data frame as carried in a communication matrix:
// identifier, format and payload length. It carries no payload bytes —
// timing analysis needs only the length.
type Frame struct {
	// ID is the arbitration identifier (doubles as the priority).
	ID ID
	// Format selects standard or extended identifiers.
	Format IDFormat
	// DLC is the payload length in bytes, 0 through 8.
	DLC int
}

// Validate reports whether the frame is well formed.
func (f Frame) Validate() error {
	if f.DLC < 0 || f.DLC > MaxPayload {
		return fmt.Errorf("can: DLC %d outside [0,%d]", f.DLC, MaxPayload)
	}
	if !f.ID.Valid(f.Format) {
		return fmt.Errorf("can: ID %s does not fit %s format", f.ID, f.Format)
	}
	return nil
}

// BitsNominal returns the frame length in bits assuming no stuff bits are
// inserted — the best case on the wire.
func (f Frame) BitsNominal() int {
	if f.Format == Extended29Bit {
		return extendedOverheadBits + 8*f.DLC
	}
	return standardOverheadBits + 8*f.DLC
}

// MaxStuffBits returns the worst-case number of stuff bits the transmitter
// can insert: one per four bits of the stuffable region after the first.
func (f Frame) MaxStuffBits() int {
	stuffable := standardStuffableBits
	if f.Format == Extended29Bit {
		stuffable = extendedStuffableBits
	}
	return (stuffable + 8*f.DLC - 1) / 4
}

// BitsWorstCase returns the frame length in bits with worst-case stuffing.
func (f Frame) BitsWorstCase() int {
	return f.BitsNominal() + f.MaxStuffBits()
}

// Bits returns the frame length under the given stuffing assumption.
func (f Frame) Bits(s Stuffing) int {
	if s == StuffingWorstCase {
		return f.BitsWorstCase()
	}
	return f.BitsNominal()
}

// Stuffing selects the bit-stuffing assumption used when converting frames
// to wire time. Worst-case stuffing is the sound choice for analysis;
// nominal lengths exist for ablation studies and optimistic load models.
type Stuffing int

const (
	// StuffingWorstCase charges every frame its maximal stuffed length.
	StuffingWorstCase Stuffing = iota
	// StuffingNominal charges every frame its unstuffed length.
	StuffingNominal
)

// String names the stuffing assumption.
func (s Stuffing) String() string {
	if s == StuffingNominal {
		return "nominal"
	}
	return "worst-case"
}
