package can

import "fmt"

// IDFormat selects between the two CAN identifier formats.
type IDFormat int

const (
	// Standard11Bit is the CAN 2.0A base frame format.
	Standard11Bit IDFormat = iota
	// Extended29Bit is the CAN 2.0B extended frame format.
	Extended29Bit
)

// String returns the conventional name of the format.
func (f IDFormat) String() string {
	switch f {
	case Standard11Bit:
		return "standard"
	case Extended29Bit:
		return "extended"
	default:
		return fmt.Sprintf("IDFormat(%d)", int(f))
	}
}

// MaxID returns the largest identifier representable in the format.
func (f IDFormat) MaxID() ID {
	if f == Extended29Bit {
		return 1<<29 - 1
	}
	return 1<<11 - 1
}

// ID is a CAN identifier. On the wire a dominant (0) bit wins arbitration,
// so a numerically smaller ID has higher priority.
type ID uint32

// Valid reports whether the identifier fits the given format.
func (id ID) Valid(f IDFormat) bool {
	return id <= f.MaxID()
}

// HigherPriorityThan reports whether id wins arbitration against other.
// Mixed-format comparison follows the wire behaviour: the first 11 bits
// decide first; if the base IDs tie, a standard frame's RTR/SRR and IDE
// bits are dominant earlier, so the standard frame wins.
func (id ID) HigherPriorityThan(other ID, f, otherF IDFormat) bool {
	base, otherBase := id.base11(f), other.base11(otherF)
	if base != otherBase {
		return base < otherBase
	}
	if f != otherF {
		return f == Standard11Bit
	}
	return id < other
}

// base11 extracts the 11 most significant identifier bits as sent on the
// wire, which lead arbitration for both formats.
func (id ID) base11(f IDFormat) uint32 {
	if f == Extended29Bit {
		return uint32(id) >> 18
	}
	return uint32(id)
}

// String renders the ID in the conventional hexadecimal form.
func (id ID) String() string {
	return fmt.Sprintf("0x%X", uint32(id))
}
