package can

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFrameBitsKnownValues(t *testing.T) {
	tests := []struct {
		name      string
		frame     Frame
		nominal   int
		worstCase int
	}{
		{"standard 0 bytes", Frame{ID: 0x100, Format: Standard11Bit, DLC: 0}, 47, 47 + 8},
		{"standard 1 byte", Frame{ID: 0x100, Format: Standard11Bit, DLC: 1}, 55, 55 + 10},
		{"standard 8 bytes", Frame{ID: 0x100, Format: Standard11Bit, DLC: 8}, 111, 135},
		{"extended 0 bytes", Frame{ID: 0x100, Format: Extended29Bit, DLC: 0}, 67, 67 + 13},
		{"extended 8 bytes", Frame{ID: 0x100, Format: Extended29Bit, DLC: 8}, 131, 131 + 29},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.frame.BitsNominal(); got != tt.nominal {
				t.Errorf("BitsNominal() = %d, want %d", got, tt.nominal)
			}
			if got := tt.frame.BitsWorstCase(); got != tt.worstCase {
				t.Errorf("BitsWorstCase() = %d, want %d", got, tt.worstCase)
			}
		})
	}
}

func TestFrameBitsSelector(t *testing.T) {
	f := Frame{ID: 1, Format: Standard11Bit, DLC: 8}
	if f.Bits(StuffingWorstCase) != f.BitsWorstCase() {
		t.Error("Bits(StuffingWorstCase) disagrees with BitsWorstCase")
	}
	if f.Bits(StuffingNominal) != f.BitsNominal() {
		t.Error("Bits(StuffingNominal) disagrees with BitsNominal")
	}
}

func TestFrameValidate(t *testing.T) {
	tests := []struct {
		name    string
		frame   Frame
		wantErr bool
	}{
		{"ok standard", Frame{ID: 0x7FF, Format: Standard11Bit, DLC: 8}, false},
		{"ok extended", Frame{ID: 0x1FFFFFFF, Format: Extended29Bit, DLC: 0}, false},
		{"DLC too large", Frame{ID: 1, Format: Standard11Bit, DLC: 9}, true},
		{"DLC negative", Frame{ID: 1, Format: Standard11Bit, DLC: -1}, true},
		{"standard ID overflow", Frame{ID: 0x800, Format: Standard11Bit, DLC: 0}, true},
		{"extended ID overflow", Frame{ID: 0x20000000, Format: Extended29Bit, DLC: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.frame.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBitsMonotoneInDLC(t *testing.T) {
	for _, format := range []IDFormat{Standard11Bit, Extended29Bit} {
		prevNom, prevWC := 0, 0
		for dlc := 0; dlc <= MaxPayload; dlc++ {
			f := Frame{ID: 1, Format: format, DLC: dlc}
			if f.BitsNominal() <= prevNom {
				t.Errorf("%s DLC %d: nominal bits not strictly increasing", format, dlc)
			}
			if f.BitsWorstCase() <= prevWC {
				t.Errorf("%s DLC %d: worst-case bits not strictly increasing", format, dlc)
			}
			if f.BitsWorstCase() < f.BitsNominal() {
				t.Errorf("%s DLC %d: worst case below nominal", format, dlc)
			}
			prevNom, prevWC = f.BitsNominal(), f.BitsWorstCase()
		}
	}
}

func TestStuffBitsBound(t *testing.T) {
	// Stuff bits can never exceed a quarter of the stuffable region.
	prop := func(dlcRaw uint8, ext bool) bool {
		dlc := int(dlcRaw % 9)
		format := Standard11Bit
		stuffable := 34
		if ext {
			format = Extended29Bit
			stuffable = 54
		}
		f := Frame{ID: 1, Format: format, DLC: dlc}
		max := f.MaxStuffBits()
		return max >= 0 && max <= (stuffable+8*dlc)/4
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIDPriority(t *testing.T) {
	tests := []struct {
		name   string
		a, b   ID
		af, bf IDFormat
		aWins  bool
	}{
		{"lower standard wins", 0x100, 0x200, Standard11Bit, Standard11Bit, true},
		{"higher standard loses", 0x200, 0x100, Standard11Bit, Standard11Bit, false},
		{"equal does not win", 0x100, 0x100, Standard11Bit, Standard11Bit, false},
		{"lower extended wins", 0x10000, 0x20000, Extended29Bit, Extended29Bit, true},
		{"standard beats extended on equal base", 0x100, 0x100 << 18, Standard11Bit, Extended29Bit, true},
		{"extended loses to standard on equal base", 0x100 << 18, 0x100, Extended29Bit, Standard11Bit, false},
		{"extended with smaller base beats standard", 0x0FF << 18, 0x100, Extended29Bit, Standard11Bit, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.HigherPriorityThan(tt.b, tt.af, tt.bf); got != tt.aWins {
				t.Errorf("HigherPriorityThan() = %v, want %v", got, tt.aWins)
			}
		})
	}
}

func TestIDPriorityAsymmetric(t *testing.T) {
	// For distinct IDs of the same format exactly one side wins.
	prop := func(aRaw, bRaw uint16) bool {
		a := ID(aRaw % 0x800)
		b := ID(bRaw % 0x800)
		if a == b {
			return !a.HigherPriorityThan(b, Standard11Bit, Standard11Bit)
		}
		x := a.HigherPriorityThan(b, Standard11Bit, Standard11Bit)
		y := b.HigherPriorityThan(a, Standard11Bit, Standard11Bit)
		return x != y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBusBitTime(t *testing.T) {
	tests := []struct {
		rate int
		want time.Duration
	}{
		{Rate500k, 2 * time.Microsecond},
		{Rate250k, 4 * time.Microsecond},
		{Rate125k, 8 * time.Microsecond},
		{Rate1M, 1 * time.Microsecond},
	}
	for _, tt := range tests {
		b := Bus{Name: "test", BitRate: tt.rate}
		if got := b.BitTime(); got != tt.want {
			t.Errorf("BitTime(%d) = %v, want %v", tt.rate, got, tt.want)
		}
	}
}

func TestBusFrameTime(t *testing.T) {
	b := Bus{Name: "powertrain", BitRate: Rate500k}
	f := Frame{ID: 0x100, Format: Standard11Bit, DLC: 8}
	// 135 bits at 2us per bit.
	if got, want := b.FrameTime(f, StuffingWorstCase), 270*time.Microsecond; got != want {
		t.Errorf("FrameTime(worst) = %v, want %v", got, want)
	}
	if got, want := b.FrameTime(f, StuffingNominal), 222*time.Microsecond; got != want {
		t.Errorf("FrameTime(nominal) = %v, want %v", got, want)
	}
}

func TestBusValidate(t *testing.T) {
	if err := (Bus{Name: "ok", BitRate: Rate500k}).Validate(); err != nil {
		t.Errorf("valid bus rejected: %v", err)
	}
	if err := (Bus{Name: "bad", BitRate: 0}).Validate(); err == nil {
		t.Error("zero bit rate accepted")
	}
	if err := (Bus{Name: "bad", BitRate: -5}).Validate(); err == nil {
		t.Error("negative bit rate accepted")
	}
}

func TestErrorOverheadTime(t *testing.T) {
	b := Bus{Name: "test", BitRate: Rate500k}
	if got, want := b.ErrorOverheadTime(), 62*time.Microsecond; got != want {
		t.Errorf("ErrorOverheadTime() = %v, want %v", got, want)
	}
}

func TestIDString(t *testing.T) {
	if got := ID(0x1A0).String(); got != "0x1A0" {
		t.Errorf("ID.String() = %q", got)
	}
}

func TestFormatString(t *testing.T) {
	if Standard11Bit.String() != "standard" || Extended29Bit.String() != "extended" {
		t.Error("IDFormat.String() unexpected")
	}
	if IDFormat(7).String() == "" {
		t.Error("unknown format should still render")
	}
}
