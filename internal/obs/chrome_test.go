package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChrome(t *testing.T) {
	tr := NewTrace(testID(11), 0)
	ctx := ContextWithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "campaign")
	_, child := StartSpan(ctx, "scenario")
	child.SetInt("seed", 7)
	child.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			PID  int               `json:"pid"`
			TID  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal([]byte(b.String()), &file); err != nil {
		t.Fatal(err)
	}
	if len(file.TraceEvents) != 2 {
		t.Fatalf("got %d events", len(file.TraceEvents))
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("ph = %q", ev.Ph)
		}
		// Both spans share the root's lane.
		if ev.TID != root.ID() {
			t.Fatalf("tid = %d, want root lane %d", ev.TID, root.ID())
		}
	}
	found := false
	for _, ev := range file.TraceEvents {
		if ev.Name == "scenario" && ev.Args["seed"] == "7" {
			found = true
		}
	}
	if !found {
		t.Fatal("scenario event with seed attr not exported")
	}
	if file.Metadata["trace_id"] != tr.ID().String() {
		t.Fatalf("metadata trace_id = %q", file.Metadata["trace_id"])
	}
}

func TestWriteChromeEmptyTrace(t *testing.T) {
	tr := NewTrace(testID(12), 0)
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace export: %s", b.String())
	}
}
