package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prom writes Prometheus text exposition format (version 0.0.4): HELP
// and TYPE lines per family, then one sample line per (name, labels)
// pair. It is a plain writer, not a registry — the caller supplies
// values in a deterministic order, which keeps scrapes diffable.
//
//	p := obs.NewProm(w)
//	p.Family("symtago_requests_total", "counter", "Requests by route.")
//	p.Value("symtago_requests_total", obs.Labels{"route", "/v1/analyze"}, 17)
//	err := p.Err()
type Prom struct {
	w   io.Writer
	err error
}

// Labels is a flat key, value, key, value... list. A flat list keeps
// label order under caller control (Prometheus treats label order as
// insignificant, but deterministic output is diffable output).
type Labels []string

// NewProm returns a writer emitting to w.
func NewProm(w io.Writer) *Prom { return &Prom{w: w} }

// Err returns the first write error.
func (p *Prom) Err() error { return p.err }

func (p *Prom) write(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s)
}

// Family emits the # HELP and # TYPE header for a metric family. typ
// is "counter", "gauge", "histogram" or "summary".
func (p *Prom) Family(name, typ, help string) {
	p.write("# HELP " + name + " " + escapeHelp(help) + "\n")
	p.write("# TYPE " + name + " " + typ + "\n")
}

// Value emits one sample line.
func (p *Prom) Value(name string, labels Labels, v float64) {
	p.write(name)
	p.labels(labels)
	p.write(" " + formatFloat(v) + "\n")
}

// Uint emits one sample line from an integer counter.
func (p *Prom) Uint(name string, labels Labels, v uint64) {
	p.write(name)
	p.labels(labels)
	p.write(" " + strconv.FormatUint(v, 10) + "\n")
}

// Histogram emits a full cumulative histogram: one {le="..."} bucket
// line per bound, the +Inf bucket, then _sum and _count. counts are
// per-bucket (non-cumulative) observations; bounds are the upper
// bounds in seconds matching counts[:len(bounds)], with counts'
// final element the overflow bucket.
func (p *Prom) Histogram(name string, labels Labels, bounds []float64, counts []uint64, sum float64) {
	var cum uint64
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		p.write(name + "_bucket")
		p.labels(append(append(Labels{}, labels...), "le", formatFloat(b)))
		p.write(" " + strconv.FormatUint(cum, 10) + "\n")
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	p.write(name + "_bucket")
	p.labels(append(append(Labels{}, labels...), "le", "+Inf"))
	p.write(" " + strconv.FormatUint(cum, 10) + "\n")
	p.Value(name+"_sum", labels, sum)
	p.Uint(name+"_count", labels, cum)
}

// labels writes a {k="v",...} block (nothing when empty).
func (p *Prom) labels(kv Labels) {
	if len(kv) == 0 {
		return
	}
	p.write("{")
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			p.write(",")
		}
		p.write(kv[i] + "=\"" + escapeLabel(kv[i+1]) + "\"")
	}
	p.write("}")
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// SortedKeys returns the map's keys sorted — the standard way handlers
// iterate label sets deterministically.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
