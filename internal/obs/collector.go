package obs

import (
	"encoding/binary"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contenthash"
)

// DefaultTraceBuffer is how many finished-or-active traces a Collector
// retains before evicting the oldest.
const DefaultTraceBuffer = 64

// DefaultSampleRate is the fraction of unsolicited requests traced
// when the operator sets no rate. Requests carrying X-Trace-Id are
// always traced regardless.
const DefaultSampleRate = 0.01

// Collector owns trace lifecycle for a server: it mints IDs, applies
// the sampling decision, and retains a bounded FIFO of traces for
// later retrieval via GET /v1/trace/{id}. A nil *Collector never
// samples and never retains.
type Collector struct {
	sample    float64
	limit     int
	spanLimit int

	seed uint64

	mu     sync.Mutex
	ctr    uint64
	traces map[ID]*Trace
	order  []ID
}

// NewCollector returns a collector tracing the given fraction of
// unsolicited requests. sample <= 0 disables sampling (header-carried
// IDs are still honored); sample >= 1 traces everything. limit <= 0
// selects DefaultTraceBuffer, spanLimit <= 0 DefaultSpanLimit.
func NewCollector(sample float64, limit, spanLimit int) *Collector {
	if limit <= 0 {
		limit = DefaultTraceBuffer
	}
	if spanLimit <= 0 {
		spanLimit = DefaultSpanLimit
	}
	h := contenthash.New(0x6f62735f73656564) // "obs_seed"
	h.Int(time.Now().UnixNano())
	h.Int(int64(os.Getpid()))
	return &Collector{
		sample:    sample,
		limit:     limit,
		spanLimit: spanLimit,
		seed:      binary.LittleEndian.Uint64(firstEight(h.Sum())),
		traces:    make(map[ID]*Trace),
	}
}

func firstEight(d contenthash.Digest) []byte { return d[:8] }

// idCounter feeds the collector-less NewID.
var idCounter atomic.Uint64

// NewID mints a process-unique 128-bit trace ID without a collector —
// the standalone form CLI commands use to trace one run at full rate.
func NewID() ID {
	h := contenthash.New(0x6f62735f7472_6964) // "obs_trid"
	h.Int(time.Now().UnixNano())
	h.Int(int64(os.Getpid()))
	h.Word(idCounter.Add(1))
	return h.Sum()
}

// NewID mints a process-unique 128-bit trace ID.
func (c *Collector) NewID() ID {
	c.mu.Lock()
	c.ctr++
	n := c.ctr
	c.mu.Unlock()
	h := contenthash.New(0x6f62735f7472_6964) // "obs_trid"
	h.Word(c.seed)
	h.Word(n)
	return h.Sum()
}

// Sampled reports whether the ID falls inside the sample fraction. The
// decision hashes only the ID, so it is deterministic per trace: every
// process that sees the same ID makes the same call.
func (c *Collector) Sampled(id ID) bool {
	if c == nil || c.sample <= 0 {
		return false
	}
	if c.sample >= 1 {
		return true
	}
	v := binary.LittleEndian.Uint64(id[:8])
	return float64(v) < c.sample*float64(^uint64(0))
}

// StartRequest decides tracing for one incoming request: a request
// carrying a valid X-Trace-Id is always traced under that ID (the
// caller already paid for the decision), otherwise a fresh ID is
// minted and sampled at the collector's rate. The returned trace is
// nil when the request goes untraced; parent is the caller's span ID
// from X-Parent-Span (0 when absent).
func (c *Collector) StartRequest(r *http.Request) (tr *Trace, parent uint64) {
	if c == nil {
		return nil, 0
	}
	if hdr := r.Header.Get(TraceIDHeader); hdr != "" {
		if id, ok := ParseID(hdr); ok {
			return c.open(id), ParseSpanID(r.Header.Get(ParentSpanHeader))
		}
	}
	id := c.NewID()
	if !c.Sampled(id) {
		return nil, 0
	}
	return c.open(id), 0
}

// open registers (or returns the existing) trace for id, evicting the
// oldest retained trace past the buffer limit.
func (c *Collector) open(id ID) *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tr, ok := c.traces[id]; ok {
		return tr
	}
	tr := NewTrace(id, c.spanLimit)
	c.traces[id] = tr
	c.order = append(c.order, id)
	for len(c.order) > c.limit {
		delete(c.traces, c.order[0])
		c.order = c.order[1:]
	}
	return tr
}

// Get returns the retained trace for a 32-hex-char ID, or nil.
func (c *Collector) Get(idHex string) *Trace {
	if c == nil {
		return nil
	}
	id, ok := ParseID(idHex)
	if !ok {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traces[id]
}

// Len reports how many traces the collector retains.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}
