package obs

import (
	"container/heap"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultFlightSlowest is how many entries a flight recorder keeps
// when the operator sets no size.
const DefaultFlightSlowest = 32

// FlightEntry is one recorded operation: its label, duration, start
// time, and full span tree in portable form.
type FlightEntry struct {
	Label   string     `json:"label"`
	DurNS   int64      `json:"dur_ns"`
	StartUS int64      `json:"start_us"`
	Spans   []WireSpan `json:"spans,omitempty"`
}

// FlightRecorder retains the N slowest offered operations — a bounded
// min-heap keyed on duration, so a fast operation is rejected in O(1)
// and a new slowest costs O(log n). Campaigns offer every scenario;
// what survives is the tail worth debugging. A nil *FlightRecorder
// accepts offers and records nothing.
type FlightRecorder struct {
	mu      sync.Mutex
	entries flightHeap
	limit   int
	offered uint64
}

// NewFlightRecorder returns a recorder keeping the limit slowest
// entries. limit <= 0 selects DefaultFlightSlowest.
func NewFlightRecorder(limit int) *FlightRecorder {
	if limit <= 0 {
		limit = DefaultFlightSlowest
	}
	return &FlightRecorder{limit: limit}
}

// Offer records the operation if it ranks among the slowest seen.
// spans may be nil (label+duration only).
func (f *FlightRecorder) Offer(label string, start time.Time, dur time.Duration, spans []WireSpan) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.offered++
	if len(f.entries) >= f.limit {
		if int64(dur) <= f.entries[0].DurNS {
			return
		}
		f.entries[0] = FlightEntry{Label: label, DurNS: int64(dur), StartUS: start.UnixMicro(), Spans: spans}
		heap.Fix(&f.entries, 0)
		return
	}
	heap.Push(&f.entries, FlightEntry{Label: label, DurNS: int64(dur), StartUS: start.UnixMicro(), Spans: spans})
}

// Offered reports how many operations were offered in total.
func (f *FlightRecorder) Offered() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.offered
}

// Snapshot returns the retained entries, slowest first.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := append([]FlightEntry(nil), f.entries...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurNS != out[j].DurNS {
			return out[i].DurNS > out[j].DurNS
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// flightDump is the JSON envelope of a recorder dump.
type flightDump struct {
	Offered uint64        `json:"offered"`
	Kept    int           `json:"kept"`
	Slowest []FlightEntry `json:"slowest"`
}

// WriteJSON dumps the recorder (slowest first) as indented JSON — the
// payload of /v1/debug/slowest and the SIGQUIT dump.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	snap := f.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flightDump{Offered: f.Offered(), Kept: len(snap), Slowest: snap})
}

// flightHeap is a min-heap on duration (root = fastest retained entry,
// the next to be displaced).
type flightHeap []FlightEntry

func (h flightHeap) Len() int           { return len(h) }
func (h flightHeap) Less(i, j int) bool { return h[i].DurNS < h[j].DurNS }
func (h flightHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *flightHeap) Push(x any)        { *h = append(*h, x.(FlightEntry)) }
func (h *flightHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
