package obs

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/contenthash"
)

func key(n uint64) contenthash.Digest {
	h := contenthash.New(1)
	h.Word(n)
	return h.Sum()
}

func TestTracedStoreForwardsExactly(t *testing.T) {
	bare := cache.NewLRU(16)
	traced := NewTracedStore(cache.NewLRU(16))

	// Drive both identically through the package helpers, as a session
	// would; the inner Stats must match the bare store's exactly.
	for _, s := range []cache.Store{bare, traced} {
		cache.PutPrimary(s, key(1), "a")
		if v, ok := cache.GetPrimary(s, key(1)); !ok || v != "a" {
			t.Fatalf("GetPrimary = %v, %v", v, ok)
		}
		if _, _, ok := cache.GetLeveled(s, key(2)); ok {
			t.Fatal("miss expected")
		}
		s.Put(key(3), "c")
		if v, ok := s.Get(key(3)); !ok || v != "c" {
			t.Fatalf("Get = %v, %v", v, ok)
		}
	}
	bs, ts := bare.Stats(), traced.Stats()
	if bs != ts {
		t.Fatalf("pinned-stats contract broken:\nbare   %+v\ntraced %+v", bs, ts)
	}

	l1, l2, miss, puts := traced.Counts()
	if l1 != 2 || l2 != 0 || miss != 1 || puts != 2 {
		t.Fatalf("counts = %d,%d,%d,%d", l1, l2, miss, puts)
	}
}

func TestTracedStoreNil(t *testing.T) {
	if NewTracedStore(nil) != nil {
		t.Fatal("wrapping nil must return nil")
	}
	var ts *TracedStore
	if a, b, c, d := ts.Counts(); a+b+c+d != 0 {
		t.Fatal("nil counts")
	}
	ts.Finish(NewTrace(ID{}, 0), 0) // must not panic
}

func TestTracedStoreFinishSpans(t *testing.T) {
	l1 := cache.NewLRU(16)
	l2 := cache.NewLRU(16)
	l2.Put(key(1), "from-l2")
	traced := NewTracedStore(cache.NewTiered(l1, l2))

	if v, primary, ok := traced.GetLeveled(key(1)); !ok || primary || v != "from-l2" {
		t.Fatalf("GetLeveled = %v, %v, %v", v, primary, ok)
	}
	if _, _, ok := traced.GetLeveled(key(2)); ok {
		t.Fatal("miss expected")
	}
	traced.PutPrimary(key(3), "x")
	if _, ok := traced.GetPrimary(key(3)); !ok {
		t.Fatal("primary hit expected")
	}

	tr := NewTrace(testID(9), 0)
	traced.Finish(tr, 0)
	byName := map[string]Span{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	s1, ok := byName["cache.l1"]
	if !ok {
		t.Fatal("missing cache.l1 span")
	}
	s2, ok := byName["cache.l2"]
	if !ok {
		t.Fatal("missing cache.l2 span")
	}
	attrs := func(s Span) map[string]string {
		m := map[string]string{}
		for _, a := range s.Attrs {
			m[a.Key] = a.Value
		}
		return m
	}
	a1, a2 := attrs(s1), attrs(s2)
	// 1 primary hit, 1 L2 hit, 1 full miss, 1 put.
	if a1["hits"] != "1" || a1["misses"] != "2" || a1["puts"] != "1" {
		t.Fatalf("cache.l1 attrs = %v", a1)
	}
	if a2["hits"] != "1" || a2["misses"] != "1" {
		t.Fatalf("cache.l2 attrs = %v", a2)
	}
}

func TestTracedStoreFinishIdleEmitsNothing(t *testing.T) {
	traced := NewTracedStore(cache.NewLRU(4))
	tr := NewTrace(testID(10), 0)
	traced.Finish(tr, 0)
	if tr.Len() != 0 {
		t.Fatalf("idle store emitted %d spans", tr.Len())
	}
}

func TestTracedStoreSatisfiesLeveled(t *testing.T) {
	var s cache.Store = NewTracedStore(cache.NewLRU(4))
	if _, ok := s.(cache.Leveled); !ok {
		t.Fatal("TracedStore must satisfy cache.Leveled")
	}
}
