// Package obs is the zero-external-dependency observability layer:
// structured tracing with 128-bit trace IDs propagated across process
// boundaries via HTTP headers, a Chrome trace_event exporter, a
// Prometheus-text-format writer, a flight recorder keeping the N
// slowest operations with their span trees, and a tracing wrapper for
// cache.Store tiers.
//
// The paper's core problem is diagnosing integration failures across
// many suppliers' opaque components; the reproduction's stack spans the
// same kind of boundary (service → coordinator → shard workers → cache
// tiers). obs makes one request followable through all of them.
//
// The hard invariant, shared with the cache pinned-stats contract: the
// layer is strictly an observer. All responses, reports and rows are
// byte-identical with tracing on or off — spans travel in separate
// fields and separate endpoints, never inside result payloads. A nil
// *Trace (and a nil *ActiveSpan, *FlightRecorder) is a valid no-op, so
// untraced hot paths pay one context lookup and nothing else.
package obs
