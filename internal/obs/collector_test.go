package obs

import (
	"net/http/httptest"
	"testing"
)

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	if c.Sampled(testID(1)) {
		t.Fatal("nil collector sampled")
	}
	if tr, _ := c.StartRequest(httptest.NewRequest("GET", "/", nil)); tr != nil {
		t.Fatal("nil collector traced")
	}
	if c.Get("x") != nil || c.Len() != 0 {
		t.Fatal("nil collector retained")
	}
}

func TestCollectorHeaderAlwaysTraced(t *testing.T) {
	c := NewCollector(0, 0, 0) // sampling disabled
	id := testID(0x3c)
	r := httptest.NewRequest("GET", "/", nil)
	r.Header.Set(TraceIDHeader, id.String())
	r.Header.Set(ParentSpanHeader, "7")
	tr, parent := c.StartRequest(r)
	if tr == nil {
		t.Fatal("header-carried ID must always trace")
	}
	if tr.ID() != id {
		t.Fatalf("trace id = %v, want %v", tr.ID(), id)
	}
	if parent != 7 {
		t.Fatalf("parent = %d, want 7", parent)
	}
	// Same ID returns the same trace.
	tr2, _ := c.StartRequest(r)
	if tr2 != tr {
		t.Fatal("same ID must return the same trace")
	}
	if got := c.Get(id.String()); got != tr {
		t.Fatal("Get must return the retained trace")
	}
}

func TestCollectorSampling(t *testing.T) {
	full := NewCollector(1, 0, 0)
	off := NewCollector(0, 0, 0)
	never := NewCollector(-1, 0, 0)
	sampled := 0
	for i := 0; i < 100; i++ {
		id := full.NewID()
		if full.Sampled(id) {
			sampled++
		}
		if off.Sampled(id) || never.Sampled(id) {
			t.Fatal("disabled sampling sampled an ID")
		}
	}
	if sampled != 100 {
		t.Fatalf("rate 1.0 sampled %d/100", sampled)
	}
	// A fractional rate is deterministic per ID.
	half := NewCollector(0.5, 0, 0)
	id := half.NewID()
	first := half.Sampled(id)
	for i := 0; i < 10; i++ {
		if half.Sampled(id) != first {
			t.Fatal("sampling decision must be deterministic per ID")
		}
	}
}

func TestCollectorUnsampledRequestUntraced(t *testing.T) {
	c := NewCollector(0, 0, 0)
	tr, _ := c.StartRequest(httptest.NewRequest("GET", "/", nil))
	if tr != nil {
		t.Fatal("rate 0 must not trace unsolicited requests")
	}
	cFull := NewCollector(1, 0, 0)
	tr, parent := cFull.StartRequest(httptest.NewRequest("GET", "/", nil))
	if tr == nil || parent != 0 {
		t.Fatalf("rate 1 must trace: tr=%v parent=%d", tr, parent)
	}
}

func TestCollectorEviction(t *testing.T) {
	c := NewCollector(1, 2, 0)
	var ids []ID
	for i := 0; i < 3; i++ {
		r := httptest.NewRequest("GET", "/", nil)
		id := c.NewID()
		r.Header.Set(TraceIDHeader, id.String())
		c.StartRequest(r)
		ids = append(ids, id)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.Get(ids[0].String()) != nil {
		t.Fatal("oldest trace must be evicted")
	}
	if c.Get(ids[2].String()) == nil {
		t.Fatal("newest trace must be retained")
	}
}

func TestNewIDUnique(t *testing.T) {
	c := NewCollector(1, 0, 0)
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		id := c.NewID()
		if seen[id] {
			t.Fatalf("duplicate ID %v", id)
		}
		seen[id] = true
	}
}
