package obs

import (
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/contenthash"
)

// TracedStore observes cache traffic through a cache.Store without
// perturbing it. It preserves the pinned-stats contract exactly: every
// call forwards through the same cache.GetLeveled / GetPrimary /
// PutPrimary helpers a session would use on the bare store, so session
// hit/miss counters — and therefore campaign rows and service
// responses — are byte-identical with the wrapper in place.
//
// Individual lookups are far too frequent for per-lookup spans (one
// scenario's RTA alone performs thousands), so the wrapper aggregates:
// Finish emits one "cache.l1" and, when L2 traffic occurred, one
// "cache.l2" span carrying hit/miss totals for the traced operation.
type TracedStore struct {
	inner cache.Store

	l1Hits atomic.Uint64 // served by the in-process level
	l2Hits atomic.Uint64 // served by the second level
	misses atomic.Uint64 // served by recomputation
	puts   atomic.Uint64

	// remote/remoteStart snapshot the fleet tier (when the inner stack
	// has one) at construction, so Finish can emit the tier's counter
	// movement over the traced window as a "cache.remote" span.
	remote      *cache.Remote
	remoteStart cache.RemoteStats
}

// NewTracedStore wraps s. A nil s returns nil, and the zero wrapper is
// never valid — always construct through here.
func NewTracedStore(s cache.Store) *TracedStore {
	if s == nil {
		return nil
	}
	t := &TracedStore{inner: s}
	if t.remote = cache.RemoteOf(s); t.remote != nil {
		t.remoteStart = t.remote.RemoteStats()
	}
	return t
}

// Inner returns the wrapped store.
func (t *TracedStore) Inner() cache.Store { return t.inner }

// Get implements cache.Store.
func (t *TracedStore) Get(key contenthash.Digest) (any, bool) {
	v, primary, ok := cache.GetLeveled(t.inner, key)
	t.count(primary, ok)
	return v, ok
}

// Put implements cache.Store.
func (t *TracedStore) Put(key contenthash.Digest, value any) {
	t.puts.Add(1)
	t.inner.Put(key, value)
}

// Stats implements cache.Store, forwarding the inner counters
// untouched (the pinned-stats contract).
func (t *TracedStore) Stats() cache.Stats { return t.inner.Stats() }

// GetLeveled implements cache.Leveled.
func (t *TracedStore) GetLeveled(key contenthash.Digest) (v any, primary, ok bool) {
	v, primary, ok = cache.GetLeveled(t.inner, key)
	t.count(primary, ok)
	return v, primary, ok
}

// GetPrimary implements cache.Leveled.
func (t *TracedStore) GetPrimary(key contenthash.Digest) (any, bool) {
	v, ok := cache.GetPrimary(t.inner, key)
	t.count(true, ok)
	return v, ok
}

// PutPrimary implements cache.Leveled.
func (t *TracedStore) PutPrimary(key contenthash.Digest, value any) {
	t.puts.Add(1)
	cache.PutPrimary(t.inner, key, value)
}

func (t *TracedStore) count(primary, ok bool) {
	switch {
	case ok && primary:
		t.l1Hits.Add(1)
	case ok:
		t.l2Hits.Add(1)
	default:
		t.misses.Add(1)
	}
}

// Counts snapshots the wrapper's own counters (not the inner store's).
func (t *TracedStore) Counts() (l1Hits, l2Hits, misses, puts uint64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.l1Hits.Load(), t.l2Hits.Load(), t.misses.Load(), t.puts.Load()
}

// Finish emits the aggregated cache spans as children of ctx's current
// span: "cache.l1" always (hits = primary hits, misses = everything
// the primary level could not serve), "cache.l2" when any lookup
// reached a second level (hits = L2 hits, misses = full misses). It is
// safe on a nil receiver and without a recording trace.
func (t *TracedStore) Finish(tr *Trace, parent uint64) {
	if t == nil || tr == nil {
		return
	}
	l1, l2, miss, puts := t.Counts()
	if l1+l2+miss+puts == 0 {
		return
	}
	now := time.Now()
	s1 := Span{ID: tr.newSpanID(), Parent: parent, Name: "cache.l1", Start: now}
	s1.Attrs = []Attr{
		{Key: "hits", Value: utoa(l1)},
		{Key: "misses", Value: utoa(l2 + miss)},
		{Key: "puts", Value: utoa(puts)},
	}
	tr.record(s1)
	if l2 > 0 || t.sawL2() {
		s2 := Span{ID: tr.newSpanID(), Parent: parent, Name: "cache.l2", Start: now}
		s2.Attrs = []Attr{
			{Key: "hits", Value: utoa(l2)},
			{Key: "misses", Value: utoa(miss)},
		}
		tr.record(s2)
	}
	if t.remote != nil {
		// The fleet tier's counters are process-global, so concurrent
		// traced requests overlap; the span reports the tier's movement
		// during this operation's window, which is the useful signal
		// (did the fleet serve us, and was the breaker in the way).
		rs := t.remote.RemoteStats()
		gets := rs.Gets - t.remoteStart.Gets
		if gets > 0 || rs.Degraded > t.remoteStart.Degraded {
			s3 := Span{ID: tr.newSpanID(), Parent: parent, Name: "cache.remote", Start: now}
			s3.Attrs = []Attr{
				{Key: "gets", Value: utoa(gets)},
				{Key: "hits", Value: utoa(rs.Hits - t.remoteStart.Hits)},
				{Key: "errors", Value: utoa(rs.Errors - t.remoteStart.Errors)},
				{Key: "degraded", Value: utoa(rs.Degraded - t.remoteStart.Degraded)},
				{Key: "breaker", Value: rs.Breaker.String()},
			}
			tr.record(s3)
		}
	}
}

// sawL2 reports whether the inner store has a second level at all.
func (t *TracedStore) sawL2() bool {
	_, leveled := t.inner.(cache.Leveled)
	if !leveled {
		return false
	}
	// A flat store satisfying Leveled is still single-level; only the
	// tiered composition distinguishes levels in its stats.
	st := t.inner.Stats()
	return st.L2 != nil
}
