package obs

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contenthash"
)

// ID is a 128-bit trace identifier. It reuses the contenthash digest
// type, so it renders as 32 hex characters and hashes deterministically
// for sampling decisions.
type ID = contenthash.Digest

// ParseID decodes a 32-hex-character trace ID (the header form).
func ParseID(s string) (ID, bool) {
	var id ID
	if len(s) != 32 {
		return id, false
	}
	for i := 0; i < 32; i++ {
		c := s[i]
		var v byte
		switch {
		case c >= '0' && c <= '9':
			v = c - '0'
		case c >= 'a' && c <= 'f':
			v = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			v = c - 'A' + 10
		default:
			return ID{}, false
		}
		if i%2 == 0 {
			id[i/2] = v << 4
		} else {
			id[i/2] |= v
		}
	}
	return id, true
}

// Trace propagation headers. A coordinator injects them into shard
// requests; the service accepts them on any application route, so a
// client (or an upstream service) can stitch its own ID through the
// whole stack.
const (
	// TraceIDHeader carries the 32-hex-char trace ID. An incoming
	// request bearing it is always traced (the caller already decided);
	// the response echoes the ID back on every traced request.
	TraceIDHeader = "X-Trace-Id"
	// ParentSpanHeader carries the caller's span ID (decimal), so the
	// callee's spans attach under the right parent when re-imported.
	ParentSpanHeader = "X-Parent-Span"
)

// DefaultSpanLimit bounds the spans one trace retains. Past it new
// spans are counted as dropped instead of growing without bound — a
// traced 50k-scenario campaign must not hold 50k span trees alive.
const DefaultSpanLimit = 16384

// Attr is one key/value annotation of a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one completed operation within a trace. IDs are allocated
// per trace, dense from 1; Parent 0 marks a root span.
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Trace is a bounded buffer of completed spans sharing one ID. It is
// safe for concurrent use; a nil *Trace is a valid always-off trace.
type Trace struct {
	id       ID
	nextSpan atomic.Uint64

	mu      sync.Mutex
	spans   []Span
	limit   int
	dropped uint64
}

// NewTrace returns an empty recording trace. limit <= 0 selects
// DefaultSpanLimit.
func NewTrace(id ID, limit int) *Trace {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Trace{id: id, limit: limit}
}

// ID returns the trace identifier.
func (t *Trace) ID() ID { return t.id }

// newSpanID allocates the next span ID.
func (t *Trace) newSpanID() uint64 { return t.nextSpan.Add(1) }

// record appends a completed span, counting it as dropped past the
// span limit.
func (t *Trace) record(s Span) {
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Spans copies the completed spans (recording order).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped reports how many spans the limit discarded.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many spans the trace retains.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Adopt splices every span of sub under the given parent span of t:
// sub's span IDs are remapped into t's ID space (preserving sub's
// internal parent links) and sub's roots become children of parent.
// Campaign scenarios record into a private scratch trace and adopt it
// into the campaign trace, so parallel scenarios never contend on one
// span buffer.
func (t *Trace) Adopt(parent uint64, sub *Trace) {
	if t == nil || sub == nil {
		return
	}
	spans := sub.Spans()
	if len(spans) == 0 {
		return
	}
	remap := make(map[uint64]uint64, len(spans))
	for i := range spans {
		remap[spans[i].ID] = t.newSpanID()
	}
	for i := range spans {
		s := spans[i]
		s.ID = remap[s.ID]
		if p, ok := remap[s.Parent]; ok && s.Parent != 0 {
			s.Parent = p
		} else {
			s.Parent = parent
		}
		t.record(s)
	}
	t.mu.Lock()
	t.dropped += sub.Dropped()
	t.mu.Unlock()
}

// ActiveSpan is an in-flight span. Obtain one from StartSpan; all
// methods are nil-safe, so untraced call sites need no branching.
type ActiveSpan struct {
	tr   *Trace
	span Span
}

// ctxKey keys the trace and the current span in a context.
type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// ContextWithTrace returns ctx carrying the recording trace. A nil
// trace returns ctx unchanged.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the recording trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// SpanIDFrom returns the current span ID carried by ctx (0 at the
// trace root).
func SpanIDFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(spanKey).(uint64)
	return id
}

// ContextWithSpanID returns ctx with the current span set explicitly —
// used when the parent span ID arrived over the wire rather than from
// a local StartSpan. Setting 0 resets the chain, so spans recorded
// into a fresh scratch trace do not inherit a foreign parent ID.
func ContextWithSpanID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, spanKey, id)
}

// StartSpan opens a span under the context's current span. When ctx
// carries no recording trace it returns (ctx, nil) — and the nil
// ActiveSpan's methods are no-ops — so the untraced path costs two
// context lookups.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	s := &ActiveSpan{tr: tr, span: Span{
		ID:     tr.newSpanID(),
		Parent: SpanIDFrom(ctx),
		Name:   name,
		Start:  time.Now(),
	}}
	return context.WithValue(ctx, spanKey, s.span.ID), s
}

// SetAttr annotates the span.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value.
func (s *ActiveSpan) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, itoa(v))
}

// SetBool annotates the span with a boolean value.
func (s *ActiveSpan) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	if v {
		s.SetAttr(key, "true")
	} else {
		s.SetAttr(key, "false")
	}
}

// ID returns the span's ID (0 on a nil span).
func (s *ActiveSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// End completes the span and records it into its trace.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.Dur = time.Since(s.span.Start)
	s.tr.record(s.span)
}

// Inject writes the context's trace ID and current span ID into h, so
// an outgoing HTTP request carries the trace across the process
// boundary. Without a recording trace it is a no-op.
func Inject(ctx context.Context, h http.Header) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return
	}
	h.Set(TraceIDHeader, tr.ID().String())
	if parent := SpanIDFrom(ctx); parent != 0 {
		h.Set(ParentSpanHeader, utoa(parent))
	}
}

// itoa formats a signed integer without fmt (hot-path annotations).
func itoa(v int64) string {
	if v < 0 {
		return "-" + utoa(uint64(-v))
	}
	return utoa(uint64(v))
}

// utoa formats an unsigned integer without fmt.
func utoa(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(buf[i:])
}

// ParseSpanID decodes a decimal span ID (the header form).
func ParseSpanID(s string) uint64 {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0
		}
		v = v*10 + uint64(c-'0')
	}
	return v
}
