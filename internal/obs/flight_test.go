package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Offer("x", time.Now(), time.Second, nil) // must not panic
	if f.Snapshot() != nil || f.Offered() != 0 {
		t.Fatal("nil recorder retained")
	}
}

func TestFlightRecorderKeepsSlowest(t *testing.T) {
	f := NewFlightRecorder(3)
	now := time.Now()
	durs := []time.Duration{5, 1, 9, 3, 7, 2, 8} // ms
	for i, d := range durs {
		f.Offer("op"+string(rune('a'+i)), now, d*time.Millisecond, nil)
	}
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("kept %d, want 3", len(snap))
	}
	// Slowest first: 9, 8, 7 ms.
	want := []int64{int64(9 * time.Millisecond), int64(8 * time.Millisecond), int64(7 * time.Millisecond)}
	for i, e := range snap {
		if e.DurNS != want[i] {
			t.Fatalf("snap[%d].DurNS = %d, want %d", i, e.DurNS, want[i])
		}
	}
	if f.Offered() != uint64(len(durs)) {
		t.Fatalf("offered = %d", f.Offered())
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Offer("slow", time.Now(), time.Second, []WireSpan{{ID: 1, Name: "analyze"}})
	var b strings.Builder
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Offered uint64        `json:"offered"`
		Kept    int           `json:"kept"`
		Slowest []FlightEntry `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(b.String()), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Offered != 1 || dump.Kept != 1 || len(dump.Slowest) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	if dump.Slowest[0].Label != "slow" || len(dump.Slowest[0].Spans) != 1 {
		t.Fatalf("entry = %+v", dump.Slowest[0])
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8)
	var wg sync.WaitGroup
	now := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Offer("op", now, time.Duration(g*1000+i), nil)
			}
		}(g)
	}
	wg.Wait()
	snap := f.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("kept %d, want 8", len(snap))
	}
	if f.Offered() != 1600 {
		t.Fatalf("offered = %d", f.Offered())
	}
	// The retained set must be the true top 8: 7199..7192.
	if snap[0].DurNS != 7199 || snap[7].DurNS != 7192 {
		t.Fatalf("top-8 wrong: first=%d last=%d", snap[0].DurNS, snap[7].DurNS)
	}
}
