package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// microTime converts wall-clock microseconds back to a time.Time.
func microTime(us int64) time.Time { return time.UnixMicro(us) }

// microDur converts microseconds to a duration.
func microDur(us int64) time.Duration { return time.Duration(us) * time.Microsecond }

// WireSpan is the portable JSON form of a Span: wall-clock microseconds
// instead of time.Time, so spans survive a process boundary (shard
// responses) and feed the Chrome exporter directly.
type WireSpan struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// WireSpans converts the trace's spans to the portable form.
func (t *Trace) WireSpans() []WireSpan {
	spans := t.Spans()
	out := make([]WireSpan, len(spans))
	for i, s := range spans {
		out[i] = WireSpan{
			ID:      s.ID,
			Parent:  s.Parent,
			Name:    s.Name,
			StartUS: s.Start.UnixMicro(),
			DurUS:   s.Dur.Microseconds(),
			Attrs:   s.Attrs,
		}
	}
	return out
}

// Subtree returns the portable form of the span rooted at root plus
// all its recorded descendants — the slice a flight recorder keeps for
// one operation of a shared trace. Root itself must already be
// recorded (i.e. ended) to appear.
func (t *Trace) Subtree(root uint64) []WireSpan {
	if t == nil || root == 0 {
		return nil
	}
	spans := t.Spans()
	parent := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	under := func(id uint64) bool {
		for depth := 0; depth < 64; depth++ {
			if id == root {
				return true
			}
			p, ok := parent[id]
			if !ok || p == 0 {
				return false
			}
			id = p
		}
		return false
	}
	var out []WireSpan
	for _, s := range spans {
		if !under(s.ID) {
			continue
		}
		out = append(out, WireSpan{
			ID:      s.ID,
			Parent:  s.Parent,
			Name:    s.Name,
			StartUS: s.Start.UnixMicro(),
			DurUS:   s.Dur.Microseconds(),
			Attrs:   s.Attrs,
		})
	}
	return out
}

// ImportWire splices portable spans (e.g. a shard worker's) under the
// given parent span of t, remapping their IDs into t's ID space like
// Adopt. Span times are kept as sent: the workers' clocks line the
// spans up well enough for a fleet on NTP, and durations are exact.
func (t *Trace) ImportWire(parent uint64, spans []WireSpan) {
	if t == nil || len(spans) == 0 {
		return
	}
	remap := make(map[uint64]uint64, len(spans))
	for i := range spans {
		remap[spans[i].ID] = t.newSpanID()
	}
	for _, ws := range spans {
		s := Span{
			ID:    remap[ws.ID],
			Name:  ws.Name,
			Start: microTime(ws.StartUS),
			Dur:   microDur(ws.DurUS),
			Attrs: ws.Attrs,
		}
		if p, ok := remap[ws.Parent]; ok && ws.Parent != 0 {
			s.Parent = p
		} else {
			s.Parent = parent
		}
		t.record(s)
	}
}

// chromeEvent is one trace_event entry ("X" = complete event). The
// format is what chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the containing object of a trace_event export.
type chromeFile struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// WriteChrome exports the trace as Chrome trace_event JSON. Each span
// becomes a complete ("X") event; the thread ID is the span's root-most
// ancestor, so each request/shard/scenario subtree renders as its own
// lane. Events are emitted in (lane, start) order for stable output.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	// Resolve each span to its root ancestor for lane assignment.
	parent := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	lane := func(id uint64) uint64 {
		for depth := 0; depth < 64; depth++ {
			p := parent[id]
			if p == 0 {
				return id
			}
			id = p
		}
		return id
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   s.Start.UnixMicro(),
			Dur:  s.Dur.Microseconds(),
			PID:  1,
			TID:  lane(s.ID),
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].TS < events[j].TS
	})
	file := chromeFile{
		TraceEvents: events,
		Metadata: map[string]string{
			"trace_id": t.ID().String(),
			"dropped":  utoa(t.Dropped()),
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
