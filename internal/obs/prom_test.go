package obs

import (
	"strings"
	"testing"
)

func TestPromBasic(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Family("x_total", "counter", "Things.")
	p.Uint("x_total", Labels{"route", "/v1/analyze"}, 17)
	p.Value("x_ratio", nil, 0.25)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "# HELP x_total Things.\n# TYPE x_total counter\nx_total{route=\"/v1/analyze\"} 17\nx_ratio 0.25\n"
	if got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Uint("x", Labels{"k", "a\"b\\c\nd"}, 1)
	got := b.String()
	want := `x{k="a\"b\\c\nd"} 1` + "\n"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	// bounds 0.001/0.01 with per-bucket counts 3,2 and 1 overflow.
	p.Histogram("d_seconds", Labels{"route", "/x"}, []float64{0.001, 0.01}, []uint64{3, 2, 1}, 0.05)
	got := b.String()
	for _, want := range []string{
		`d_seconds_bucket{route="/x",le="0.001"} 3`,
		`d_seconds_bucket{route="/x",le="0.01"} 5`,
		`d_seconds_bucket{route="/x",le="+Inf"} 6`,
		`d_seconds_sum{route="/x"} 0.05`,
		`d_seconds_count{route="/x"} 6`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}
