package obs

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func testID(b byte) ID {
	var id ID
	for i := range id {
		id[i] = b
	}
	return id
}

func TestParseIDRoundTrip(t *testing.T) {
	id := testID(0xa7)
	got, ok := ParseID(id.String())
	if !ok || got != id {
		t.Fatalf("ParseID(%q) = %v, %v", id.String(), got, ok)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 32), strings.Repeat("0", 31), strings.Repeat("0", 33)} {
		if _, ok := ParseID(bad); ok {
			t.Fatalf("ParseID(%q) accepted", bad)
		}
	}
	// Mixed case decodes.
	up := strings.ToUpper(id.String())
	if got, ok := ParseID(up); !ok || got != id {
		t.Fatalf("ParseID upper = %v, %v", got, ok)
	}
}

func TestStartSpanUntracedIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatalf("expected nil span without a trace")
	}
	if ctx2 != ctx {
		t.Fatalf("expected unchanged ctx without a trace")
	}
	// Every nil-receiver method must be safe.
	sp.SetAttr("k", "v")
	sp.SetInt("n", -3)
	sp.SetBool("b", true)
	sp.End()
	if sp.ID() != 0 {
		t.Fatalf("nil span ID = %d", sp.ID())
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTrace(testID(1), 0)
	ctx := ContextWithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	ctx2, child := StartSpan(ctx, "child")
	if SpanIDFrom(ctx2) != child.ID() {
		t.Fatalf("ctx current span = %d, want %d", SpanIDFrom(ctx2), child.ID())
	}
	child.SetInt("n", 42)
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Children end (and record) first.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent %d != root id %d", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Fatalf("root parent = %d", spans[1].Parent)
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0] != (Attr{Key: "n", Value: "42"}) {
		t.Fatalf("attrs = %v", spans[0].Attrs)
	}
}

func TestTraceSpanLimit(t *testing.T) {
	tr := NewTrace(testID(2), 3)
	ctx := ContextWithTrace(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestAdoptRemapsIDs(t *testing.T) {
	main := NewTrace(testID(3), 0)
	ctx := ContextWithTrace(context.Background(), main)
	_, parent := StartSpan(ctx, "campaign")

	scratch := NewTrace(ID{}, 0)
	sctx := ContextWithTrace(context.Background(), scratch)
	sctx, outer := StartSpan(sctx, "scenario")
	_, inner := StartSpan(sctx, "analyze")
	inner.End()
	outer.End()

	main.Adopt(parent.ID(), scratch)
	parent.End()

	spans := main.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["scenario"].Parent != byName["campaign"].ID {
		t.Fatalf("scenario parent %d != campaign id %d", byName["scenario"].Parent, byName["campaign"].ID)
	}
	if byName["analyze"].Parent != byName["scenario"].ID {
		t.Fatalf("analyze parent %d != scenario id %d", byName["analyze"].Parent, byName["scenario"].ID)
	}
	// IDs must be unique after the remap.
	seen := map[uint64]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestAdoptNilSafe(t *testing.T) {
	var tr *Trace
	tr.Adopt(1, NewTrace(ID{}, 0)) // must not panic
	main := NewTrace(testID(4), 0)
	main.Adopt(1, nil)
	if main.Len() != 0 {
		t.Fatalf("adopting nil recorded spans")
	}
}

func TestImportWire(t *testing.T) {
	main := NewTrace(testID(5), 0)
	ctx := ContextWithTrace(context.Background(), main)
	_, disp := StartSpan(ctx, "shard.dispatch")

	wire := []WireSpan{
		{ID: 1, Name: "shard", StartUS: 1000, DurUS: 500},
		{ID: 2, Parent: 1, Name: "scenario", StartUS: 1100, DurUS: 200},
	}
	main.ImportWire(disp.ID(), wire)
	disp.End()

	spans := main.Spans()
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["shard"].Parent != disp.ID() {
		t.Fatalf("shard parent = %d, want %d", byName["shard"].Parent, disp.ID())
	}
	if byName["scenario"].Parent != byName["shard"].ID {
		t.Fatalf("scenario parent = %d, want %d", byName["scenario"].Parent, byName["shard"].ID)
	}
	if byName["scenario"].Dur != 200*time.Microsecond {
		t.Fatalf("dur = %v", byName["scenario"].Dur)
	}
}

func TestWireSpansRoundTrip(t *testing.T) {
	tr := NewTrace(testID(6), 0)
	ctx := ContextWithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "op")
	sp.SetAttr("k", "v")
	sp.End()
	ws := tr.WireSpans()
	if len(ws) != 1 || ws[0].Name != "op" || len(ws[0].Attrs) != 1 {
		t.Fatalf("wire spans = %+v", ws)
	}
}

func TestInjectAndHeaders(t *testing.T) {
	h := http.Header{}
	Inject(context.Background(), h) // no trace: no-op
	if len(h) != 0 {
		t.Fatalf("untraced Inject wrote headers: %v", h)
	}
	tr := NewTrace(testID(7), 0)
	ctx := ContextWithTrace(context.Background(), tr)
	ctx, sp := StartSpan(ctx, "root")
	Inject(ctx, h)
	if got := h.Get(TraceIDHeader); got != tr.ID().String() {
		t.Fatalf("trace header = %q", got)
	}
	if got := ParseSpanID(h.Get(ParentSpanHeader)); got != sp.ID() {
		t.Fatalf("parent header = %d, want %d", got, sp.ID())
	}
	sp.End()
}

func TestParseSpanID(t *testing.T) {
	if ParseSpanID("123") != 123 {
		t.Fatal("123")
	}
	if ParseSpanID("") != 0 || ParseSpanID("x1") != 0 {
		t.Fatal("invalid input must parse to 0")
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTrace(testID(8), 0)
	ctx := ContextWithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, sp := StartSpan(ctx, "op")
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("len = %d, want 800", tr.Len())
	}
}
