package service

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/osek"
	"repro/internal/rta"
	"repro/internal/tdma"
)

// The wire types below are the service's JSON vocabulary. Every slice
// is sorted by name and every duration rendered as a Go duration
// string, so a given analysis state marshals to one byte sequence —
// the property the selftest compares across concurrent clients.

// AnalysisSummary is the wire form of a core.Analysis.
type AnalysisSummary struct {
	Converged   bool             `json:"converged"`
	Iterations  int              `json:"iterations"`
	Schedulable bool             `json:"schedulable"`
	Buses       []BusSummary     `json:"buses,omitempty"`
	ECUs        []ECUSummary     `json:"ecus,omitempty"`
	TDMA        []TDMASummary    `json:"tdma,omitempty"`
	Gateways    []GatewaySummary `json:"gateways,omitempty"`
	Paths       []PathSummary    `json:"paths,omitempty"`
}

// BusSummary condenses one bus report.
type BusSummary struct {
	Name        string  `json:"name"`
	Messages    int     `json:"messages"`
	Utilization float64 `json:"utilization"`
	Misses      int     `json:"misses"`
	WorstWCRT   string  `json:"worst_wcrt"`
	Schedulable bool    `json:"schedulable"`
}

// ECUSummary condenses one ECU report.
type ECUSummary struct {
	Name        string  `json:"name"`
	Tasks       int     `json:"tasks"`
	Utilization float64 `json:"utilization"`
	WorstWCRT   string  `json:"worst_wcrt"`
	Schedulable bool    `json:"schedulable"`
}

// TDMASummary condenses one TDMA bus report.
type TDMASummary struct {
	Name        string  `json:"name"`
	Messages    int     `json:"messages"`
	Utilization float64 `json:"utilization"`
	WorstWCRT   string  `json:"worst_wcrt"`
	Schedulable bool    `json:"schedulable"`
}

// GatewaySummary condenses one gateway queueing report. Backlog and
// RequiredDepth are -1 when the service cannot keep up (unbounded).
type GatewaySummary struct {
	Name          string `json:"name"`
	Delay         string `json:"delay"`
	Backlog       int    `json:"backlog"`
	RequiredDepth int    `json:"required_depth"`
	Overflow      bool   `json:"overflow"`
	OverwriteLoss bool   `json:"overwrite_loss"`
}

// PathSummary is one end-to-end latency bound.
type PathSummary struct {
	Name    string `json:"name"`
	Hops    int    `json:"hops"`
	Latency string `json:"latency"`
}

// unboundedBacklog mirrors gateway.Analyze's MaxInt saturation.
const unboundedBacklog = int(^uint(0) >> 1)

// fmtDuration renders d, mapping the sentinel to "unbounded".
func fmtDuration(d, unbounded time.Duration) string {
	if d == unbounded {
		return "unbounded"
	}
	return d.String()
}

// summarize converts an analysis into its canonical wire form.
func summarize(a *core.Analysis) *AnalysisSummary {
	s := &AnalysisSummary{
		Converged:   a.Converged,
		Iterations:  a.Iterations,
		Schedulable: a.AllSchedulable(),
	}
	for name, rep := range a.BusReports {
		worst := time.Duration(0)
		unbounded := false
		for _, r := range rep.Results {
			if r.WCRT == rta.Unschedulable {
				unbounded = true
			} else if r.WCRT > worst {
				worst = r.WCRT
			}
		}
		w := worst.String()
		if unbounded {
			w = "unbounded"
		}
		s.Buses = append(s.Buses, BusSummary{
			Name: name, Messages: len(rep.Results),
			Utilization: rep.Utilization, Misses: rep.MissCount(),
			WorstWCRT: w, Schedulable: rep.AllSchedulable(),
		})
	}
	for name, rep := range a.ECUReports {
		worst := time.Duration(0)
		unbounded := false
		sched := true
		for _, r := range rep.Results {
			if r.WCRT == osek.Unschedulable {
				unbounded = true
			} else if r.WCRT > worst {
				worst = r.WCRT
			}
			sched = sched && r.Schedulable
		}
		w := worst.String()
		if unbounded {
			w = "unbounded"
		}
		s.ECUs = append(s.ECUs, ECUSummary{
			Name: name, Tasks: len(rep.Results),
			Utilization: rep.Utilization, WorstWCRT: w, Schedulable: sched,
		})
	}
	for name, rep := range a.TDMAReports {
		worst := time.Duration(0)
		unbounded := false
		sched := true
		for _, r := range rep.Results {
			if r.WCRT == tdma.Unschedulable {
				unbounded = true
			} else if r.WCRT > worst {
				worst = r.WCRT
			}
			sched = sched && r.Schedulable
		}
		w := worst.String()
		if unbounded {
			w = "unbounded"
		}
		s.TDMA = append(s.TDMA, TDMASummary{
			Name: name, Messages: len(rep.Results),
			Utilization: rep.Utilization, WorstWCRT: w, Schedulable: sched,
		})
	}
	for name, rep := range a.GatewayReports {
		backlog, depth := rep.Backlog, rep.RequiredDepth
		if backlog == unboundedBacklog {
			backlog, depth = -1, -1
		}
		loss := false
		for _, fr := range rep.Flows {
			loss = loss || fr.OverwriteLoss
		}
		s.Gateways = append(s.Gateways, GatewaySummary{
			Name:  name,
			Delay: fmtDuration(rep.Delay, gateway.Unbounded), Backlog: backlog,
			RequiredDepth: depth, Overflow: rep.Overflow, OverwriteLoss: loss,
		})
	}
	for _, p := range a.Paths {
		s.Paths = append(s.Paths, PathSummary{
			Name: p.Name, Hops: len(p.Hops),
			Latency: fmtDuration(p.Latency, core.Unbounded),
		})
	}
	sort.Slice(s.Buses, func(i, j int) bool { return s.Buses[i].Name < s.Buses[j].Name })
	sort.Slice(s.ECUs, func(i, j int) bool { return s.ECUs[i].Name < s.ECUs[j].Name })
	sort.Slice(s.TDMA, func(i, j int) bool { return s.TDMA[i].Name < s.TDMA[j].Name })
	sort.Slice(s.Gateways, func(i, j int) bool { return s.Gateways[i].Name < s.Gateways[j].Name })
	sort.Slice(s.Paths, func(i, j int) bool { return s.Paths[i].Name < s.Paths[j].Name })
	return s
}

// SessionCreated is the response of POST /v1/sessions.
type SessionCreated struct {
	ID         string  `json:"id"`
	TTLSeconds float64 `json:"ttl_seconds"`
}

// ChangesApplied is the response of POST /v1/sessions/{id}/changes.
type ChangesApplied struct {
	Applied  int              `json:"applied"`
	Changes  []string         `json:"changes"`
	Analysis *AnalysisSummary `json:"analysis"`
}

// SessionInfo is the response of GET /v1/sessions/{id}.
type SessionInfo struct {
	ID         string  `json:"id"`
	ReportHits uint64  `json:"report_hits"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	HitRatePct float64 `json:"hit_rate_pct"`
}

// SimulateResponse is the response of POST /v1/simulate.
type SimulateResponse struct {
	Runs          int    `json:"runs"`
	Frames        int    `json:"frames"`
	Violations    int    `json:"violations"`
	Losses        int    `json:"losses"`
	LossPredicted bool   `json:"loss_predicted"`
	MinMarginPct  string `json:"min_margin_pct,omitempty"`
}

// CampaignStarted is the response of POST /v1/campaigns.
type CampaignStarted struct {
	ID        string `json:"id"`
	Scenarios int    `json:"scenarios"`
}

// CampaignStatus is the response of GET /v1/campaigns/{id} (and the
// `status` event payload of its SSE stream).
type CampaignStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // running | done | failed | cancelled
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Seq is the job's change sequence number; pass it back as
	// ?since=<seq> on a long-poll to wait for anything newer.
	Seq     uint64           `json:"seq"`
	Shards  *ShardStatus     `json:"shards,omitempty"`
	Error   string           `json:"error,omitempty"`
	Summary *CampaignSummary `json:"summary,omitempty"`
}

// ShardStatus reports the fan-out bookkeeping of a distributed
// campaign: shards completed/failed (failures count attempts, retried
// shards still complete) and workers configured/dropped.
type ShardStatus struct {
	Total          int `json:"total"`
	Done           int `json:"done"`
	Failed         int `json:"failed"`
	Workers        int `json:"workers"`
	DroppedWorkers int `json:"dropped_workers"`
}

// CampaignSummary condenses a finished campaign report.
type CampaignSummary struct {
	Corpus               string  `json:"corpus"`
	Scenarios            int     `json:"scenarios"`
	Converged            int     `json:"converged"`
	Schedulable          int     `json:"schedulable"`
	SimRuns              int     `json:"sim_runs"`
	Frames               int     `json:"frames"`
	Violations           int     `json:"violations"`
	Losses               int     `json:"losses"`
	LossOnlyPredicted    bool    `json:"loss_only_predicted"`
	MedianHitRatePct     float64 `json:"median_hit_rate_pct"`
	FlippedUnschedulable int     `json:"flipped_unschedulable"`
	FlippedSchedulable   int     `json:"flipped_schedulable"`
}

// errorBody is the uniform error response: a human-readable message
// plus a machine-readable code (see the Code* constants).
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// marginString renders a margin percentage, empty when NaN.
func marginString(pct float64) string {
	if math.IsNaN(pct) {
		return ""
	}
	return fmt.Sprintf("%.3f", pct)
}
