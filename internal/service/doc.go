// Package service is the long-running analysis endpoint of the
// reproduction: an HTTP/JSON server (surfaced as `symtago serve`) that
// keeps what-if sessions, the content-addressed memo store and
// campaign jobs alive across requests, so OEMs and suppliers replaying
// incremental K-Matrix revisions pay only for what their changes can
// reach instead of rebuilding the analysis per invocation.
//
// Endpoints (docs/service.md documents the wire format):
//
//	POST   /v1/analyze                 one-shot compositional analysis of an uploaded corpus spec
//	POST   /v1/simulate                netsim seed fan cross-validated against the bounds
//	POST   /v1/sessions                open a persistent what-if session
//	GET    /v1/sessions/{id}/analysis  current bounds of the session state
//	POST   /v1/sessions/{id}/changes   apply a system change script, re-verify incrementally
//	GET    /v1/sessions/{id}           session cache statistics
//	DELETE /v1/sessions/{id}           close the session
//	POST   /v1/campaigns               start an async sharded campaign job
//	GET    /v1/campaigns/{id}          job progress / summary
//	GET    /v1/campaigns/{id}/report   full campaign report (text)
//	POST   /v1/campaigns/{id}/cancel   stop a running job, keeping completed rows
//	POST   /v1/campaigns/{id}/resume   continue a cancelled job from its pending set
//	DELETE /v1/campaigns/{id}          drop a finished job from the table
//	GET    /v1/healthz                 liveness
//	GET    /v1/metrics                 request counts, latency histograms, what-if hit rates
//
// Uploads use the scenario corpus spec (scenario.ParseSpec) as the
// system wire format and the what-if system change script
// (whatif.ParseSystemScript) as the revision wire format. Sessions are
// serialised by per-session locks and analyses are bit-deterministic
// for any cache state and worker count, so concurrent clients get
// byte-identical responses to serial execution — LoadTest (reachable
// as `symtago serve -selftest`) proves exactly that.
package service
