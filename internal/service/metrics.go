package service

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBucketBounds are the upper bounds of the request latency
// histogram; the final bucket is unbounded.
var latencyBucketBounds = []time.Duration{
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	time.Second, 10 * time.Second,
}

// numLatencyBuckets sizes the per-route bucket array: one bucket per
// bound plus the unbounded tail. TestLatencyBucketLabels pins it to
// len(latencyBucketBounds)+1.
const numLatencyBuckets = 6

// LatencyBucketLabels label the histogram buckets in /v1/metrics.
// They are derived from latencyBucketBounds so the two cannot drift.
var LatencyBucketLabels = makeLatencyBucketLabels(latencyBucketBounds)

func makeLatencyBucketLabels(bounds []time.Duration) []string {
	out := make([]string, len(bounds)+1)
	for i, b := range bounds {
		out[i] = "<" + b.String()
	}
	out[len(bounds)] = ">=" + bounds[len(bounds)-1].String()
	return out
}

// routeMetrics accumulates one route's counters. All fields are
// atomics: the observe path is lock-free once the route is registered.
type routeMetrics struct {
	count    atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	shed     atomic.Uint64 // 429: rate limit or full queue
	timeouts atomic.Uint64 // 503: deadline expiry or drain
	durNanos atomic.Uint64 // summed elapsed time (Prometheus _sum)
	buckets  [numLatencyBuckets]atomic.Uint64
}

// metrics collects per-route request counters and latency histograms.
// The route map is copy-on-write: New registers every route before the
// server accepts traffic, so recording never takes the registration
// lock — scrapes no longer serialize concurrent requests.
type metrics struct {
	start  time.Time
	routes atomic.Pointer[map[string]*routeMetrics]
	mu     sync.Mutex // guards registration (map copy + swap) only
}

func newMetrics() *metrics {
	m := &metrics{start: time.Now()}
	empty := map[string]*routeMetrics{}
	m.routes.Store(&empty)
	return m
}

// register returns the route's counters, creating them on first use.
// Registration copies the map under the lock and swaps the pointer, so
// concurrent observers keep reading a consistent snapshot.
func (m *metrics) register(route string) *routeMetrics {
	if rm := (*m.routes.Load())[route]; rm != nil {
		return rm
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.routes.Load()
	if rm := old[route]; rm != nil {
		return rm
	}
	next := make(map[string]*routeMetrics, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	rm := &routeMetrics{}
	next[route] = rm
	m.routes.Store(&next)
	return rm
}

// observe records one request against its route pattern — atomics
// only on the fast path (the route was registered at mux build time).
func (m *metrics) observe(route string, status int, elapsed time.Duration) {
	rm := (*m.routes.Load())[route]
	if rm == nil {
		rm = m.register(route)
	}
	rm.observe(status, elapsed)
}

func (rm *routeMetrics) observe(status int, elapsed time.Duration) {
	b := 0
	for b < len(latencyBucketBounds) && elapsed >= latencyBucketBounds[b] {
		b++
	}
	rm.count.Add(1)
	if status >= 400 {
		rm.errors.Add(1)
	}
	switch status {
	case http.StatusTooManyRequests:
		rm.shed.Add(1)
	case http.StatusServiceUnavailable:
		rm.timeouts.Add(1)
	}
	rm.buckets[b].Add(1)
	if elapsed > 0 {
		rm.durNanos.Add(uint64(elapsed))
	}
}

// RouteMetrics is the wire form of one route's counters. DurNanos
// feeds the Prometheus histogram _sum and stays out of the JSON body.
type RouteMetrics struct {
	Route    string   `json:"route"`
	Count    uint64   `json:"count"`
	Errors   uint64   `json:"errors"`
	Shed     uint64   `json:"shed"`
	Timeouts uint64   `json:"timeouts"`
	Buckets  []uint64 `json:"latency_buckets"`
	DurNanos uint64   `json:"-"`
}

// snapshot returns the per-route counters sorted by route.
func (m *metrics) snapshot() []RouteMetrics {
	routes := *m.routes.Load()
	out := make([]RouteMetrics, 0, len(routes))
	for route, rm := range routes {
		r := RouteMetrics{
			Route: route, Count: rm.count.Load(), Errors: rm.errors.Load(),
			Shed: rm.shed.Load(), Timeouts: rm.timeouts.Load(),
			DurNanos: rm.durNanos.Load(),
			Buckets:  make([]uint64, numLatencyBuckets),
		}
		for i := range rm.buckets {
			r.Buckets[i] = rm.buckets[i].Load()
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// statusRecorder captures the response status for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the underlying writer so event streams can push
// frames through the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// metricsHistory is the lazily captured ring of per-tenant admission
// windows behind /v1/metrics: whenever a metrics scrape finds the
// current window elapsed, the per-tenant request/shed deltas since the
// previous capture are folded into one window and appended. A scrape
// gap longer than the window collapses into a single (longer) window —
// the ring records what happened between observations, it does not
// pretend to a scheduler it does not have.
type metricsHistory struct {
	window time.Duration
	limit  int

	mu      sync.Mutex
	start   time.Time
	base    map[string]tenantCounter
	windows []MetricsWindow
}

func newMetricsHistory(window time.Duration, limit int) *metricsHistory {
	return &metricsHistory{
		window: window, limit: limit,
		start: time.Now(), base: map[string]tenantCounter{},
	}
}

// observe folds the current totals into a new window when one has
// elapsed.
func (h *metricsHistory) observe(now time.Time, totals map[string]tenantCounter) {
	if h.window <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if now.Sub(h.start) < h.window {
		return
	}
	w := MetricsWindow{
		Start: h.start.UTC().Format(time.RFC3339Nano),
		End:   now.UTC().Format(time.RFC3339Nano),
	}
	for tenant, c := range totals {
		prev := h.base[tenant]
		reqs, shed := c.requests-prev.requests, c.shed-prev.shed
		if reqs == 0 && shed == 0 {
			continue
		}
		w.Tenants = append(w.Tenants, TenantWindow{Tenant: tenant, Requests: reqs, Shed: shed})
	}
	sort.Slice(w.Tenants, func(i, j int) bool { return w.Tenants[i].Tenant < w.Tenants[j].Tenant })
	h.windows = append(h.windows, w)
	if len(h.windows) > h.limit {
		h.windows = h.windows[len(h.windows)-h.limit:]
	}
	h.base = totals
	h.start = now
}

// snapshot copies the ring, oldest window first.
func (h *metricsHistory) snapshot() []MetricsWindow {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]MetricsWindow(nil), h.windows...)
}

// MetricsWindow is one captured span of the /v1/metrics history ring.
type MetricsWindow struct {
	Start   string         `json:"start"`
	End     string         `json:"end"`
	Tenants []TenantWindow `json:"tenants,omitempty"`
}

// TenantWindow is one tenant's admission activity within a window.
type TenantWindow struct {
	Tenant   string `json:"tenant"`
	Requests uint64 `json:"requests"`
	Shed     uint64 `json:"shed"`
}

// MetricsResponse is the response of GET /v1/metrics.
type MetricsResponse struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	BucketLabels  []string         `json:"latency_bucket_labels"`
	Requests      []RouteMetrics   `json:"requests"`
	Admission     AdmissionMetrics `json:"admission"`
	WhatIf        WhatIfMetrics    `json:"whatif"`
	Sessions      SessionsMetrics  `json:"sessions"`
	Campaigns     CampaignsMetrics `json:"campaigns"`
	// Cache reports the on-disk second level, when configured.
	Cache *CacheMetrics `json:"cache,omitempty"`
	// History is the ring of recent per-tenant admission windows
	// (oldest first; lazily captured at scrape time every
	// Config.MetricsWindow).
	History []MetricsWindow `json:"history,omitempty"`
}

// CacheMetrics reports the disk level of the tiered analysis store.
type CacheMetrics struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Corrupt   uint64 `json:"corrupt"`
	Skipped   uint64 `json:"skipped"`
}

// AdmissionMetrics reports the front-door state: the instantaneous
// queue/slot occupancy and the tenants the bucket map has seen.
type AdmissionMetrics struct {
	Queued     int  `json:"queued"`
	Executing  int  `json:"executing"`
	Tenants    int  `json:"tenants"`
	MaxClients int  `json:"max_clients"`
	QueueDepth int  `json:"queue_depth"`
	Draining   bool `json:"draining"`
}

// WhatIfMetrics aggregates the cache behaviour of the shared store and
// the live sessions.
type WhatIfMetrics struct {
	StoreEntries   int     `json:"store_entries"`
	StoreHits      uint64  `json:"store_hits"`
	StoreMisses    uint64  `json:"store_misses"`
	StoreEvictions uint64  `json:"store_evictions"`
	SessionHits    uint64  `json:"session_hits"`
	SessionMisses  uint64  `json:"session_misses"`
	SessionHitRate float64 `json:"session_hit_rate_pct"`
}

// SessionsMetrics reports the registry population.
type SessionsMetrics struct {
	Active       int    `json:"active"`
	Tenants      int    `json:"tenants"`
	Created      uint64 `json:"created"`
	Evicted      uint64 `json:"evicted"`
	QuotaEvicted uint64 `json:"quota_evicted"`
}

// CampaignsMetrics reports the job table population.
type CampaignsMetrics struct {
	Jobs      int `json:"jobs"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}
