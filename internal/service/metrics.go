package service

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// latencyBucketBounds are the upper bounds of the request latency
// histogram; the final bucket is unbounded.
var latencyBucketBounds = []time.Duration{
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	time.Second, 10 * time.Second,
}

// LatencyBucketLabels label the histogram buckets in /v1/metrics.
var LatencyBucketLabels = []string{
	"<1ms", "<10ms", "<100ms", "<1s", "<10s", ">=10s",
}

// routeMetrics accumulates one route's counters.
type routeMetrics struct {
	count    uint64
	errors   uint64 // responses with status >= 400
	shed     uint64 // 429: rate limit or full queue
	timeouts uint64 // 503: deadline expiry or drain
	buckets  [6]uint64
}

// metrics collects per-route request counters and latency histograms.
type metrics struct {
	mu     sync.Mutex
	start  time.Time
	routes map[string]*routeMetrics
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), routes: map[string]*routeMetrics{}}
}

// observe records one request against its route pattern.
func (m *metrics) observe(route string, status int, elapsed time.Duration) {
	b := 0
	for b < len(latencyBucketBounds) && elapsed >= latencyBucketBounds[b] {
		b++
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.routes[route]
	if rm == nil {
		rm = &routeMetrics{}
		m.routes[route] = rm
	}
	rm.count++
	if status >= 400 {
		rm.errors++
	}
	switch status {
	case http.StatusTooManyRequests:
		rm.shed++
	case http.StatusServiceUnavailable:
		rm.timeouts++
	}
	rm.buckets[b]++
}

// RouteMetrics is the wire form of one route's counters.
type RouteMetrics struct {
	Route    string   `json:"route"`
	Count    uint64   `json:"count"`
	Errors   uint64   `json:"errors"`
	Shed     uint64   `json:"shed"`
	Timeouts uint64   `json:"timeouts"`
	Buckets  []uint64 `json:"latency_buckets"`
}

// snapshot returns the per-route counters sorted by route.
func (m *metrics) snapshot() []RouteMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RouteMetrics, 0, len(m.routes))
	for route, rm := range m.routes {
		out = append(out, RouteMetrics{
			Route: route, Count: rm.count, Errors: rm.errors,
			Shed: rm.shed, Timeouts: rm.timeouts,
			Buckets: append([]uint64(nil), rm.buckets[:]...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// statusRecorder captures the response status for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// instrument wraps a handler, attributing its requests to route.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		startedAt := time.Now()
		h(rec, r)
		s.metrics.observe(route, rec.status, time.Since(startedAt))
	}
}

// MetricsResponse is the response of GET /v1/metrics.
type MetricsResponse struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	BucketLabels  []string         `json:"latency_bucket_labels"`
	Requests      []RouteMetrics   `json:"requests"`
	Admission     AdmissionMetrics `json:"admission"`
	WhatIf        WhatIfMetrics    `json:"whatif"`
	Sessions      SessionsMetrics  `json:"sessions"`
	Campaigns     CampaignsMetrics `json:"campaigns"`
}

// AdmissionMetrics reports the front-door state: the instantaneous
// queue/slot occupancy and the tenants the bucket map has seen.
type AdmissionMetrics struct {
	Queued     int  `json:"queued"`
	Executing  int  `json:"executing"`
	Tenants    int  `json:"tenants"`
	MaxClients int  `json:"max_clients"`
	QueueDepth int  `json:"queue_depth"`
	Draining   bool `json:"draining"`
}

// WhatIfMetrics aggregates the cache behaviour of the shared store and
// the live sessions.
type WhatIfMetrics struct {
	StoreEntries   int     `json:"store_entries"`
	StoreHits      uint64  `json:"store_hits"`
	StoreMisses    uint64  `json:"store_misses"`
	StoreEvictions uint64  `json:"store_evictions"`
	SessionHits    uint64  `json:"session_hits"`
	SessionMisses  uint64  `json:"session_misses"`
	SessionHitRate float64 `json:"session_hit_rate_pct"`
}

// SessionsMetrics reports the registry population.
type SessionsMetrics struct {
	Active       int    `json:"active"`
	Tenants      int    `json:"tenants"`
	Created      uint64 `json:"created"`
	Evicted      uint64 `json:"evicted"`
	QuotaEvicted uint64 `json:"quota_evicted"`
}

// CampaignsMetrics reports the job table population.
type CampaignsMetrics struct {
	Jobs      int `json:"jobs"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}
