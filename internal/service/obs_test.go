package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// doTraced issues a request carrying a caller-supplied trace ID and
// returns status, body, and the echoed trace header.
func doTraced(t *testing.T, method, url, body, traceID string) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if traceID != "" {
		req.Header.Set(obs.TraceIDHeader, traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get(obs.TraceIDHeader)
}

func TestPromMetricsEndpoint(t *testing.T) {
	_, base := newTestServer(t)
	if status, body := do(t, "POST", base+"/v1/analyze", testSpec(t, 5)); status != http.StatusOK {
		t.Fatalf("analyze: %d %s", status, body)
	}
	status, body := do(t, "GET", base+"/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d %s", status, body)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE symtago_uptime_seconds gauge",
		"# TYPE symtago_requests_total counter",
		`symtago_requests_total{route="POST /v1/analyze"} 1`,
		"# TYPE symtago_request_duration_seconds histogram",
		`symtago_request_duration_seconds_bucket{route="POST /v1/analyze",le="+Inf"} 1`,
		`symtago_request_duration_seconds_count{route="POST /v1/analyze"} 1`,
		"# TYPE symtago_admission_queued gauge",
		`symtago_tenant_requests_total{tenant="anonymous"} 1`,
		`symtago_cache_hits_total{tier="l1"}`,
		"# TYPE symtago_sessions_active gauge",
		"symtago_shard_dispatch_total 0",
		"symtago_worker_shards_served_total 0",
		`symtago_campaign_jobs{state="running"} 0`,
		"symtago_traces_retained",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if ct := "text/plain; version=0.0.4"; !strings.Contains(headerOf(t, base+"/metrics", "Content-Type"), ct) {
		t.Errorf("/metrics content type does not advertise %q", ct)
	}
}

// headerOf GETs url and returns the named response header.
func headerOf(t *testing.T, url, name string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.Header.Get(name)
}

func TestTraceEndpointRoundTrip(t *testing.T) {
	_, base := newTestServer(t)
	const id = "00112233445566778899aabbccddeeff"
	status, body, echoed := doTraced(t, "POST", base+"/v1/analyze", testSpec(t, 5), id)
	if status != http.StatusOK {
		t.Fatalf("traced analyze: %d %s", status, body)
	}
	if echoed != id {
		t.Fatalf("response echoed trace ID %q, want %q", echoed, id)
	}

	status, tbody := do(t, "GET", base+"/v1/trace/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", status, tbody)
	}
	var export struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(tbody, &export); err != nil {
		t.Fatalf("trace body: %v\n%s", err, tbody)
	}
	if export.Metadata["trace_id"] != id {
		t.Fatalf("metadata = %v", export.Metadata)
	}
	names := map[string]bool{}
	for _, ev := range export.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"POST /v1/analyze", "admission.queue_wait", "cache.l1"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}

	if status, _ := do(t, "GET", base+"/v1/trace/ffffffffffffffffffffffffffffffff", ""); status != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", status)
	}
}

// TestTracedResponseByteIdentical pins the tentpole invariant: the
// response body of a traced request is byte-identical to the untraced
// one.
func TestTracedResponseByteIdentical(t *testing.T) {
	_, base := newTestServer(t)
	status, plain := do(t, "POST", base+"/v1/analyze", testSpec(t, 7))
	if status != http.StatusOK {
		t.Fatalf("untraced analyze: %d %s", status, plain)
	}
	status, traced, _ := doTraced(t, "POST", base+"/v1/analyze", testSpec(t, 7),
		"ffeeddccbbaa99887766554433221100")
	if status != http.StatusOK {
		t.Fatalf("traced analyze: %d %s", status, traced)
	}
	if !bytes.Equal(plain, traced) {
		t.Fatalf("traced response differs from untraced:\n%s\n----\n%s", plain, traced)
	}
}

func TestSlowestEndpoint(t *testing.T) {
	_, base := newTestServer(t)
	// A traced request is always offered to the flight recorder.
	doTraced(t, "POST", base+"/v1/analyze", testSpec(t, 5), "0123456789abcdef0123456789abcdef")
	status, body := do(t, "GET", base+"/v1/debug/slowest", "")
	if status != http.StatusOK {
		t.Fatalf("/v1/debug/slowest: %d %s", status, body)
	}
	var got struct {
		Offered uint64 `json:"offered"`
		Kept    int    `json:"kept"`
		Slowest []struct {
			Label string `json:"label"`
			DurNS int64  `json:"dur_ns"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("slowest body: %v\n%s", err, body)
	}
	if got.Offered == 0 || got.Kept == 0 || len(got.Slowest) == 0 {
		t.Fatalf("flight recorder empty after traced request: %s", body)
	}
	found := false
	for _, e := range got.Slowest {
		if e.Label == "POST /v1/analyze" && e.DurNS > 0 {
			found = true
			// The entry must carry the request's span tree (spans are
			// in recording order; children end before the route root).
			names := map[string]bool{}
			for _, s := range e.Spans {
				names[s.Name] = true
			}
			if !names["POST /v1/analyze"] || !names["admission.queue_wait"] {
				t.Fatalf("analyze flight entry lacks its span tree: %s", body)
			}
		}
	}
	if !found {
		t.Fatalf("no analyze entry in %s", body)
	}
}
