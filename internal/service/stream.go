package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxLongPollWait caps how long a single long-poll request may park.
const maxLongPollWait = 2 * time.Minute

// progressPollInterval is the fallback re-check period for progress
// that does not bump the job's change sequence (per-row completions of
// a local run are recorded by the campaign job itself, not the
// service wrapper).
const progressPollInterval = 150 * time.Millisecond

// dispatchCampaignStatus routes GET /v1/campaigns/{id} by request
// shape: "Accept: text/event-stream" opens an SSE stream, "?wait=" is
// a long-poll, anything else is the admitted JSON snapshot. The two
// waiting variants bypass admission deliberately — a watcher parked
// for seconds must not pin a worker slot or trip the request deadline;
// they are read-only and bounded, so they cannot starve the service.
func (s *Server) dispatchCampaignStatus(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.handleCampaignStream(w, r)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		s.handleCampaignLongPoll(w, r)
		return
	}
	s.admitted(s.handleCampaignStatus)(w, r)
}

// handleCampaignLongPoll answers when the campaign's observable state
// (progress, state, shard bookkeeping) changes from what this request
// observed on arrival — or when the wait budget expires, whichever is
// first. Clients that track `seq` can pass ?since=<seq> to return
// immediately on anything newer.
func (s *Server) handleCampaignLongPoll(w http.ResponseWriter, r *http.Request) {
	cj, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	wait, err := queryDuration(r, "wait", 0)
	if err != nil || wait <= 0 {
		if err == nil {
			err = fmt.Errorf("query wait: must be a positive duration")
		}
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if wait > maxLongPollWait {
		wait = maxLongPollWait
	}
	entry, entrySeq := cj.status()
	since := entrySeq
	if v := r.URL.Query().Get("since"); v != "" {
		n, perr := strconv.ParseUint(v, 10, 64)
		if perr != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "query since: %v", perr)
			return
		}
		since = n
	}

	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	ticker := time.NewTicker(progressPollInterval)
	defer ticker.Stop()
	for {
		ch := cj.watchCh()
		st, seq := cj.status()
		if seq > since || st.Done != entry.Done || st.State != entry.State || st.State != "running" {
			writeJSON(w, http.StatusOK, st)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-deadline.C:
			writeJSON(w, http.StatusOK, st)
			return
		case <-ch:
		case <-ticker.C:
		}
	}
}

// handleCampaignStream serves the campaign as a server-sent event
// stream: a `status` event on every observable change (and at least
// the initial snapshot), a `shard` event per coordinator event of a
// distributed run, and a final `status` event in a terminal state
// before the stream closes.
func (s *Server) handleCampaignStream(w http.ResponseWriter, r *http.Request) {
	cj, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotAcceptable, CodeBadRequest,
			"event streams need a flushable connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(progressPollInterval)
	defer ticker.Stop()
	var evCursor uint64
	first := true
	var last CampaignStatus
	for {
		ch := cj.watchCh()
		events, next := cj.eventsSince(evCursor)
		evCursor = next
		for i := range events {
			writeSSE(w, "shard", &events[i])
		}
		st, _ := cj.status()
		// Seq covers every bumped change (state transitions, shard
		// bookkeeping); Done covers per-row progress of local runs,
		// which the campaign job records without bumping.
		if first || st.Seq != last.Seq || st.Done != last.Done || st.State != last.State {
			writeSSE(w, "status", st)
			first = false
			last = st
		}
		flusher.Flush()
		if st.State != "running" {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		case <-ticker.C:
		}
	}
}

// writeSSE emits one server-sent event with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
