package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// LoadTestConfig parameterises the service selftest.
type LoadTestConfig struct {
	// Clients is the number of concurrent replaying clients (default 8).
	Clients int
	// Revisions is the maximum length of the change script a client
	// replays (default 50); each client replays a prefix whose length is
	// drawn from its scenario shape.
	Revisions int
	// Seed draws the scenario under test and the traffic shapes
	// (default 7).
	Seed int64
	// Tenants is the number of tenant identities the clients spread
	// over (default 8).
	Tenants int
	// Workers bounds the per-analysis fan-out of the server under test.
	Workers int
	// Server overrides the admission configuration of the server under
	// test. Zero fields keep the service defaults, except TenantQuota,
	// which defaults to unlimited so the storm's sessions are never
	// evicted mid-replay (the quota path has its own tests).
	Server Config
	// SkipDrain skips the drain/restore phase (it needs a scratch
	// directory and a second server).
	SkipDrain bool
}

func (c LoadTestConfig) withDefaults() LoadTestConfig {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Revisions == 0 {
		c.Revisions = 50
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	return c
}

// RouteLatency is the observed client-side latency distribution of one
// route across the storm, plus its shed/timeout/error tallies.
type RouteLatency struct {
	Route string
	// Count is every attempt, retries included.
	Count int
	// Shed counts 429 responses (rate limit or full queue); Timeouts
	// counts deliberate 503s; Errors counts any other non-2xx.
	Shed, Timeouts, Errors int
	P50, P99, P999         time.Duration
}

// LoadTestResult reports the selftest outcome.
type LoadTestResult struct {
	// Clients, Revisions and Tenants echo the configuration.
	Clients, Revisions, Tenants int
	// Requests counts HTTP attempts issued across all phases, shed
	// retries included.
	Requests int
	// Shed and Timeouts total the deliberate rejections; every one was
	// retried and eventually served.
	Shed, Timeouts int
	// ShedMissingRetryAfter counts 429s that violated the contract by
	// omitting the Retry-After header.
	ShedMissingRetryAfter int
	// Unintended5xx counts 5xx responses the service did not choose
	// (anything but a structured 503 timeout/draining).
	Unintended5xx int
	// Mismatches counts non-shed responses that differed from the
	// serial golden replay; FirstMismatch describes the first one.
	Mismatches    int
	FirstMismatch string
	// Routes holds the per-route latency distributions.
	Routes []RouteLatency
	// HitRatePct is the aggregate what-if session hit rate reported by
	// /v1/metrics after the storm.
	HitRatePct float64
	// DrainOK reports the drain/restore phase: a campaign interrupted
	// by a drain resumed on a fresh server with a bit-identical report.
	// DrainDetail explains a failure (or notes the phase was skipped).
	DrainOK     bool
	DrainDetail string
	// Elapsed is the wall time of all phases.
	Elapsed time.Duration
}

// Passed reports whether the selftest met its contract: byte-identical
// non-shed responses, every shed carrying Retry-After, no unintended
// 5xx, a session hit rate above 50%, and a clean drain/restore.
func (r *LoadTestResult) Passed() bool {
	return r.Mismatches == 0 && r.ShedMissingRetryAfter == 0 &&
		r.Unintended5xx == 0 && r.HitRatePct > 50 && r.DrainOK
}

// Render formats the result for the CLI.
func (r *LoadTestResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve selftest: %d clients x <=%d revisions over %d tenants, %d requests in %v\n",
		r.Clients, r.Revisions, r.Tenants, r.Requests, r.Elapsed.Round(time.Millisecond))
	if r.Mismatches == 0 {
		fmt.Fprintf(&b, "  responses: byte-identical to serial execution\n")
	} else {
		fmt.Fprintf(&b, "  responses: %d MISMATCHES (first: %s)\n", r.Mismatches, r.FirstMismatch)
	}
	fmt.Fprintf(&b, "  shed: %d (missing Retry-After: %d)  timeouts: %d  unintended 5xx: %d\n",
		r.Shed, r.ShedMissingRetryAfter, r.Timeouts, r.Unintended5xx)
	for _, rt := range r.Routes {
		fmt.Fprintf(&b, "  %-34s n=%-6d p50=%-9v p99=%-9v p999=%-9v shed=%d timeout=%d\n",
			rt.Route, rt.Count, rt.P50.Round(time.Microsecond),
			rt.P99.Round(time.Microsecond), rt.P999.Round(time.Microsecond),
			rt.Shed, rt.Timeouts)
	}
	if r.DrainOK {
		fmt.Fprintf(&b, "  drain/restore: ok (%s)\n", r.DrainDetail)
	} else {
		fmt.Fprintf(&b, "  drain/restore: FAIL (%s)\n", r.DrainDetail)
	}
	fmt.Fprintf(&b, "  what-if session hit rate: %.1f%%", r.HitRatePct)
	if r.HitRatePct > 50 {
		b.WriteString(" (> 50% required: ok)")
	} else {
		b.WriteString(" (> 50% required: FAIL)")
	}
	return b.String()
}

// loadTestSpec is the scenario population the selftest draws scenario
// 0 from: always a multi-bus gateway chain, so incremental revisions
// have untouched resources to reuse.
func loadTestSpec(seed int64) scenario.Spec {
	return scenario.Spec{Seed: seed, Count: 1, MinBuses: 2, MaxBuses: 3}.WithDefaults()
}

// revisionScript derives a deterministic Revisions-line change script
// against scenario 0 of spec: jitter cycles on the two lowest-priority
// unforwarded messages of bus0 (the cheapest incremental edits — the
// untouched interference prefix stays memoized), with a payload
// revision every fifth line. Every edit sets an absolute value, so a
// replayed line is idempotent — the property that makes retrying a
// timed-out revision safe.
func revisionScript(spec scenario.Spec, revisions int) ([]string, error) {
	corpus, err := scenario.Generate(spec)
	if err != nil {
		return nil, err
	}
	sys, _, err := corpus.Scenarios[0].Build()
	if err != nil {
		return nil, err
	}
	forwarded := map[string]bool{}
	for _, l := range sys.Links() {
		if l.From.Resource == "bus0" {
			forwarded[l.From.Element] = true
		}
	}
	var targets []string
	for _, b := range sys.Buses() {
		if b.Name != "bus0" {
			continue
		}
		// Select by maximum frame ID (lowest priority) from the raw
		// messages — edits there dirty the smallest interference suffix.
		type cand struct {
			name string
			id   uint32
		}
		var cands []cand
		for _, m := range b.Messages {
			if !forwarded[m.Name] {
				cands = append(cands, cand{m.Name, uint32(m.Frame.ID)})
			}
		}
		for len(targets) < 2 && len(cands) > 0 {
			best := 0
			for i := range cands {
				if cands[i].id > cands[best].id {
					best = i
				}
			}
			targets = append(targets, cands[best].name)
			cands = append(cands[:best], cands[best+1:]...)
		}
	}
	if len(targets) < 2 {
		return nil, fmt.Errorf("service: selftest scenario has %d editable bus0 messages, need 2", len(targets))
	}
	lines := make([]string, revisions)
	for i := range lines {
		if i%5 == 4 {
			lines[i] = fmt.Sprintf("set-frame-dlc bus0/%s %d", targets[0], 1+i%8)
		} else {
			lines[i] = fmt.Sprintf("set-event-jitter bus0/%s %dus", targets[i%2], 50+13*i)
		}
	}
	return lines, nil
}

// trafficShape is one client's draw: which tenant it belongs to and
// how long a prefix of the revision script it replays.
type trafficShape struct {
	tenant    string
	revisions int
}

// maxShapeDraws caps the shape corpus; storms larger than this cycle
// through the draws.
const maxShapeDraws = 256

// trafficShapes derives per-client behaviour from scenario draws — the
// same generator that shapes campaign corpora shapes the storm, so the
// load is correlated and bursty rather than a uniform trickle.
func trafficShapes(cfg LoadTestConfig) ([]trafficShape, error) {
	draws := cfg.Clients
	if draws > maxShapeDraws {
		draws = maxShapeDraws
	}
	corpus, err := scenario.Generate(scenario.Spec{Seed: cfg.Seed + 1, Count: draws}.WithDefaults())
	if err != nil {
		return nil, err
	}
	shapes := make([]trafficShape, cfg.Clients)
	for i := range shapes {
		sc := &corpus.Scenarios[i%draws]
		weight := len(sc.Buses)*7 + len(sc.Changes)*3 + int(sc.Seed&0xff)
		shapes[i] = trafficShape{
			tenant:    fmt.Sprintf("tenant%02d", (i+len(sc.Changes))%cfg.Tenants),
			revisions: 1 + weight%cfg.Revisions,
		}
	}
	return shapes, nil
}

// ltRecorder is a minimal in-process ResponseWriter: the storm runs
// over direct handler calls, so thousands of concurrent clients cost
// goroutines, not TCP connections and file descriptors.
type ltRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (r *ltRecorder) Header() http.Header { return r.header }
func (r *ltRecorder) WriteHeader(s int) {
	if r.status == 0 {
		r.status = s
	}
}
func (r *ltRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}

// ltRunner drives one server under test and tallies every attempt.
type ltRunner struct {
	handler http.Handler

	requests   atomic.Uint64
	shed       atomic.Uint64
	timeouts   atomic.Uint64
	noRetryHdr atomic.Uint64
	bad5xx     atomic.Uint64

	mu     sync.Mutex
	rts    map[string]*routeTally
	first  string // first unintended failure, for the error message
	firstO sync.Once
}

type routeTally struct {
	lat                    []time.Duration
	shed, timeouts, errors int
}

func newLTRunner(h http.Handler) *ltRunner {
	return &ltRunner{handler: h, rts: map[string]*routeTally{}}
}

// ltAttemptCap bounds the shed-retry loop of one request; at one
// second per Retry-After this is minutes of backpressure, far beyond
// any healthy storm.
const ltAttemptCap = 600

// roundTrip performs one in-process request attempt.
func (lt *ltRunner) roundTrip(method, path, body, tenant string) (*ltRecorder, error) {
	req, err := http.NewRequest(method, "http://selftest"+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "text/plain")
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	rec := &ltRecorder{header: make(http.Header)}
	lt.handler.ServeHTTP(rec, req)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	return rec, nil
}

// observe records one attempt against its route label.
func (lt *ltRunner) observe(route string, elapsed time.Duration, status int) {
	lt.mu.Lock()
	rt := lt.rts[route]
	if rt == nil {
		rt = &routeTally{}
		lt.rts[route] = rt
	}
	rt.lat = append(rt.lat, elapsed)
	switch {
	case status == http.StatusTooManyRequests:
		rt.shed++
	case status == http.StatusServiceUnavailable:
		rt.timeouts++
	case status >= 400:
		rt.errors++
	}
	lt.mu.Unlock()
}

// do issues one logical request, absorbing the admission layer's
// deliberate rejections: a 429 is retried after its Retry-After, a
// structured 503 (timeout) after a short backoff — safe because every
// selftest write is idempotent. Anything else unexpected fails the
// request; a 5xx additionally counts as unintended.
func (lt *ltRunner) do(route, method, path, body, tenant string, wantStatus int) ([]byte, error) {
	for attempt := 0; attempt < ltAttemptCap; attempt++ {
		start := time.Now()
		rec, err := lt.roundTrip(method, path, body, tenant)
		if err != nil {
			return nil, err
		}
		lt.requests.Add(1)
		lt.observe(route, time.Since(start), rec.status)
		switch {
		case rec.status == wantStatus:
			return rec.body.Bytes(), nil
		case rec.status == http.StatusTooManyRequests:
			lt.shed.Add(1)
			ra := rec.header.Get("Retry-After")
			if ra == "" {
				lt.noRetryHdr.Add(1)
				time.Sleep(100 * time.Millisecond)
				continue
			}
			secs, perr := strconv.Atoi(ra)
			if perr != nil || secs < 1 {
				lt.noRetryHdr.Add(1)
				secs = 1
			}
			// Honour the header, but probe at a finer grain than whole
			// seconds — the bucket refills continuously.
			time.Sleep(time.Duration(secs) * time.Second / 4)
		case rec.status == http.StatusServiceUnavailable && ltDeliberate503(rec.body.Bytes()):
			lt.timeouts.Add(1)
			time.Sleep(50 * time.Millisecond)
		default:
			if rec.status >= 500 {
				lt.bad5xx.Add(1)
			}
			err := fmt.Errorf("%s %s: status %d: %s", method, path, rec.status, rec.body.Bytes())
			lt.firstO.Do(func() {
				lt.mu.Lock()
				lt.first = err.Error()
				lt.mu.Unlock()
			})
			return nil, err
		}
	}
	return nil, fmt.Errorf("%s %s: still shed after %d attempts", method, path, ltAttemptCap)
}

// ltDeliberate503 reports whether a 503 body carries one of the codes
// the admission layer emits on purpose.
func ltDeliberate503(body []byte) bool {
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		return false
	}
	return e.Code == CodeTimeout || e.Code == CodeDraining
}

// replay runs the full session protocol once under a tenant identity:
// create a session, fetch the base analysis, apply each script line.
// It returns the comparable response bodies.
func (lt *ltRunner) replay(specText string, script []string, tenant string) ([][]byte, error) {
	created, err := lt.do("POST /v1/sessions", "POST", "/v1/sessions", specText, tenant, http.StatusCreated)
	if err != nil {
		return nil, err
	}
	var sc SessionCreated
	if err := json.Unmarshal(created, &sc); err != nil {
		return nil, fmt.Errorf("session create response: %w", err)
	}
	bodies := make([][]byte, 0, len(script)+1)
	base, err := lt.do("GET /v1/sessions/{id}/analysis", "GET", "/v1/sessions/"+sc.ID+"/analysis", "", tenant, http.StatusOK)
	if err != nil {
		return nil, err
	}
	bodies = append(bodies, base)
	for _, line := range script {
		data, err := lt.do("POST /v1/sessions/{id}/changes", "POST", "/v1/sessions/"+sc.ID+"/changes", line, tenant, http.StatusOK)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, data)
	}
	return bodies, nil
}

// percentile returns the q-quantile of sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// routes snapshots the per-route distributions, sorted by route.
func (lt *ltRunner) routes() []RouteLatency {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make([]RouteLatency, 0, len(lt.rts))
	for route, rt := range lt.rts {
		sort.Slice(rt.lat, func(i, j int) bool { return rt.lat[i] < rt.lat[j] })
		out = append(out, RouteLatency{
			Route: route, Count: len(rt.lat),
			Shed: rt.shed, Timeouts: rt.timeouts, Errors: rt.errors,
			P50:  percentile(rt.lat, 0.50),
			P99:  percentile(rt.lat, 0.99),
			P999: percentile(rt.lat, 0.999),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// serverConfig derives the config of the server under test.
func (c LoadTestConfig) serverConfig() Config {
	sc := c.Server
	if sc.Workers == 0 {
		sc.Workers = c.Workers
	}
	if sc.TenantQuota == 0 {
		// The storm keeps every session live for its whole replay; an
		// eviction mid-replay would be an unintended failure, so the
		// default selftest disables the quota (it has dedicated tests).
		sc.TenantQuota = -1
	}
	return sc
}

// LoadTest drives the service end to end: a serial golden replay of a
// seeded revision script, then a storm of Clients concurrent tenants
// replaying scenario-shaped prefixes of the same script against one
// shared store behind the admission layer. It proves the robustness
// contract — every non-shed response byte-identical to serial
// execution, every shed a 429 with Retry-After, no unintended 5xx —
// reports p50/p99/p999 per route, and finishes by draining a live
// campaign to a checkpoint and resuming it bit-identically on a fresh
// server.
func LoadTest(cfg LoadTestConfig) (*LoadTestResult, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	spec := loadTestSpec(cfg.Seed)
	var specBuf bytes.Buffer
	if err := spec.Encode(&specBuf); err != nil {
		return nil, err
	}
	specText := specBuf.String()
	script, err := revisionScript(spec, cfg.Revisions)
	if err != nil {
		return nil, err
	}
	shapes, err := trafficShapes(cfg)
	if err != nil {
		return nil, err
	}

	srv, err := New(cfg.serverConfig())
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	lt := newLTRunner(srv.Handler())

	// Phase 1: the serial golden replay under its own tenant.
	golden, err := lt.replay(specText, script, "golden")
	if err != nil {
		return nil, fmt.Errorf("serial replay: %w", err)
	}

	res := &LoadTestResult{
		Clients: cfg.Clients, Revisions: cfg.Revisions, Tenants: cfg.Tenants,
	}

	// Phase 2: the storm. Every client compares its prefix against the
	// golden bodies — shed and timed-out attempts were retried, so what
	// arrives here is only what the service chose to serve.
	type clientOut struct {
		bodies [][]byte
		err    error
	}
	outs := make([]clientOut, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sh := shapes[c]
			outs[c].bodies, outs[c].err = lt.replay(specText, script[:sh.revisions], sh.tenant)
		}(c)
	}
	wg.Wait()
	var firstErr error
	for c, out := range outs {
		if out.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("client %d: %w", c, out.err)
			}
			continue
		}
		for i, body := range out.bodies {
			if !bytes.Equal(body, golden[i]) {
				res.Mismatches++
				if res.FirstMismatch == "" {
					res.FirstMismatch = fmt.Sprintf("client %d response %d", c, i)
				}
			}
		}
	}

	// The reported hit rate aggregates every live session.
	data, err := lt.do("GET /v1/metrics", "GET", "/v1/metrics", "", "", http.StatusOK)
	if err != nil {
		return nil, err
	}
	var m MetricsResponse
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("metrics response: %w", err)
	}
	res.HitRatePct = m.WhatIf.SessionHitRate

	// Phase 3: drain/restore — interrupt a live campaign with the
	// SIGTERM protocol and prove the resumed report is bit-identical.
	if cfg.SkipDrain {
		res.DrainOK, res.DrainDetail = true, "skipped"
	} else {
		res.DrainOK, res.DrainDetail = drainPhase(srv, lt, cfg)
	}

	res.Requests = int(lt.requests.Load())
	res.Shed = int(lt.shed.Load())
	res.Timeouts = int(lt.timeouts.Load())
	res.ShedMissingRetryAfter = int(lt.noRetryHdr.Load())
	res.Unintended5xx = int(lt.bad5xx.Load())
	res.Routes = lt.routes()
	res.Elapsed = time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// drainCampaignSpec is the corpus the drain phase interrupts: big
// enough that the drain lands mid-run on any machine.
const drainCampaignSpec = "seed = 11\ncount = 32\n"

// drainPhase starts a campaign on the (already stormed) server, drains
// the server mid-run to a checkpoint directory, restores the job on a
// fresh server and compares the resumed report byte-for-byte with an
// uninterrupted run. The stormed server is unusable afterwards.
func drainPhase(srv *Server, lt *ltRunner, cfg LoadTestConfig) (bool, string) {
	dir, err := os.MkdirTemp("", "symtago-drain-*")
	if err != nil {
		return false, fmt.Sprintf("scratch dir: %v", err)
	}
	defer os.RemoveAll(dir)

	body, err := lt.do("POST /v1/campaigns", "POST", "/v1/campaigns?seeds=1&duration=50ms",
		drainCampaignSpec, "golden", http.StatusAccepted)
	if err != nil {
		return false, fmt.Sprintf("campaign create: %v", err)
	}
	var started CampaignStarted
	if err := json.Unmarshal(body, &started); err != nil {
		return false, fmt.Sprintf("campaign create response: %v", err)
	}

	// Wait for partial progress so the drain genuinely interrupts work.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		body, err := lt.do("GET /v1/campaigns/{id}", "GET", "/v1/campaigns/"+started.ID, "", "golden", http.StatusOK)
		if err != nil {
			return false, fmt.Sprintf("campaign status: %v", err)
		}
		var st CampaignStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return false, fmt.Sprintf("campaign status response: %v", err)
		}
		if st.Done >= 1 || st.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			return false, "campaign made no progress before drain"
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The SIGTERM protocol: gate, verify the gate answers 503/draining,
	// then drain with a budget too small for the campaign to finish.
	srv.StartDraining()
	rec, err := lt.roundTrip("POST", "/v1/analyze", "count = 1\n", "golden")
	if err != nil {
		return false, fmt.Sprintf("drain probe: %v", err)
	}
	if rec.status != http.StatusServiceUnavailable || !ltDeliberate503(rec.body.Bytes()) {
		return false, fmt.Sprintf("drain probe answered %d %s, want structured 503", rec.status, rec.body.Bytes())
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	checkpointed, err := srv.Drain(drainCtx, dir)
	cancel()
	if err != nil {
		return false, fmt.Sprintf("drain: %v", err)
	}

	// Uninterrupted reference, same corpus and configuration.
	sp, err := scenario.ParseSpec(strings.NewReader(drainCampaignSpec))
	if err != nil {
		return false, fmt.Sprintf("reference spec: %v", err)
	}
	corpus, err := scenario.Generate(sp)
	if err != nil {
		return false, fmt.Sprintf("reference corpus: %v", err)
	}
	sc := cfg.serverConfig().withDefaults()
	ref, err := campaign.Run(corpus, campaign.Config{
		Workers: sc.Workers, Seeds: 1, Duration: 50 * time.Millisecond,
		MaxIterations: sc.MaxIterations,
	})
	if err != nil {
		return false, fmt.Sprintf("reference run: %v", err)
	}

	if checkpointed == 0 {
		// The campaign beat the drain budget; its report must still
		// match the reference.
		srv.jobsMu.Lock()
		cj := srv.jobs[started.ID]
		srv.jobsMu.Unlock()
		cj.mu.Lock()
		rep := cj.report
		cj.mu.Unlock()
		if rep == nil {
			return false, "campaign neither finished nor checkpointed"
		}
		if rep.Render() != ref.Render() {
			return false, "finished-before-drain report differs from reference"
		}
		return true, "campaign finished within drain budget; report verified"
	}

	// Restore on a fresh server and wait the resumed job out.
	srv2, err := New(cfg.serverConfig())
	if err != nil {
		return false, fmt.Sprintf("restart server: %v", err)
	}
	defer srv2.Close()
	lt2 := newLTRunner(srv2.Handler())
	restored, err := srv2.RestoreCampaigns(dir)
	if err != nil {
		return false, fmt.Sprintf("restore: %v", err)
	}
	if restored != checkpointed {
		return false, fmt.Sprintf("restored %d of %d checkpoints", restored, checkpointed)
	}
	for {
		body, err := lt2.do("GET /v1/campaigns/{id}", "GET", "/v1/campaigns/c1", "", "golden", http.StatusOK)
		if err != nil {
			return false, fmt.Sprintf("restored status: %v", err)
		}
		var st CampaignStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return false, fmt.Sprintf("restored status response: %v", err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" {
			return false, fmt.Sprintf("restored campaign ended %s", st.State)
		}
		if time.Now().After(deadline) {
			return false, "restored campaign did not finish"
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep, err := lt2.do("GET /v1/campaigns/{id}/report", "GET", "/v1/campaigns/c1/report", "", "golden", http.StatusOK)
	if err != nil {
		return false, fmt.Sprintf("restored report: %v", err)
	}
	if string(rep) != ref.Render() {
		return false, "resumed report differs from uninterrupted run"
	}
	return true, fmt.Sprintf("campaign drained at a checkpoint and resumed bit-identically (%d checkpoint)", checkpointed)
}
