package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
)

// LoadTestConfig parameterises the service selftest.
type LoadTestConfig struct {
	// Clients is the number of concurrent replaying clients (default 8).
	Clients int
	// Revisions is the length of the change script each client replays
	// (default 50).
	Revisions int
	// Seed draws the scenario under test (default 7).
	Seed int64
	// Workers bounds the per-analysis fan-out of the server under test.
	Workers int
}

func (c LoadTestConfig) withDefaults() LoadTestConfig {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Revisions == 0 {
		c.Revisions = 50
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// LoadTestResult reports the selftest outcome.
type LoadTestResult struct {
	// Clients and Revisions echo the configuration.
	Clients, Revisions int
	// Requests counts HTTP requests issued across both phases.
	Requests int
	// Mismatches counts concurrent responses that differed from the
	// serial golden replay; FirstMismatch describes the first one.
	Mismatches    int
	FirstMismatch string
	// HitRatePct is the aggregate what-if session hit rate reported by
	// /v1/metrics after the concurrent phase.
	HitRatePct float64
	// Elapsed is the wall time of both phases.
	Elapsed time.Duration
}

// Passed reports whether the selftest met its contract: byte-identical
// concurrent responses and a session hit rate above 50%.
func (r *LoadTestResult) Passed() bool {
	return r.Mismatches == 0 && r.HitRatePct > 50
}

// Render formats the result for the CLI.
func (r *LoadTestResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve selftest: %d clients x %d revisions, %d requests in %v\n",
		r.Clients, r.Revisions, r.Requests, r.Elapsed.Round(time.Millisecond))
	if r.Mismatches == 0 {
		fmt.Fprintf(&b, "  responses: byte-identical to serial execution\n")
	} else {
		fmt.Fprintf(&b, "  responses: %d MISMATCHES (first: %s)\n", r.Mismatches, r.FirstMismatch)
	}
	fmt.Fprintf(&b, "  what-if session hit rate: %.1f%%", r.HitRatePct)
	if r.HitRatePct > 50 {
		b.WriteString(" (> 50% required: ok)")
	} else {
		b.WriteString(" (> 50% required: FAIL)")
	}
	return b.String()
}

// loadTestSpec is the scenario population the selftest draws scenario
// 0 from: always a multi-bus gateway chain, so incremental revisions
// have untouched resources to reuse.
func loadTestSpec(seed int64) scenario.Spec {
	return scenario.Spec{Seed: seed, Count: 1, MinBuses: 2, MaxBuses: 3}.WithDefaults()
}

// revisionScript derives a deterministic Revisions-line change script
// against scenario 0 of spec: jitter cycles on the two lowest-priority
// unforwarded messages of bus0 (the cheapest incremental edits — the
// untouched interference prefix stays memoized), with a payload
// revision every fifth line.
func revisionScript(spec scenario.Spec, revisions int) ([]string, error) {
	corpus, err := scenario.Generate(spec)
	if err != nil {
		return nil, err
	}
	sys, _, err := corpus.Scenarios[0].Build()
	if err != nil {
		return nil, err
	}
	forwarded := map[string]bool{}
	for _, l := range sys.Links() {
		if l.From.Resource == "bus0" {
			forwarded[l.From.Element] = true
		}
	}
	var targets []string
	for _, b := range sys.Buses() {
		if b.Name != "bus0" {
			continue
		}
		// Select by maximum frame ID (lowest priority) from the raw
		// messages — edits there dirty the smallest interference suffix.
		type cand struct {
			name string
			id   uint32
		}
		var cands []cand
		for _, m := range b.Messages {
			if !forwarded[m.Name] {
				cands = append(cands, cand{m.Name, uint32(m.Frame.ID)})
			}
		}
		for len(targets) < 2 && len(cands) > 0 {
			best := 0
			for i := range cands {
				if cands[i].id > cands[best].id {
					best = i
				}
			}
			targets = append(targets, cands[best].name)
			cands = append(cands[:best], cands[best+1:]...)
		}
	}
	if len(targets) < 2 {
		return nil, fmt.Errorf("service: selftest scenario has %d editable bus0 messages, need 2", len(targets))
	}
	lines := make([]string, revisions)
	for i := range lines {
		if i%5 == 4 {
			lines[i] = fmt.Sprintf("set-frame-dlc bus0/%s %d", targets[0], 1+i%8)
		} else {
			lines[i] = fmt.Sprintf("set-event-jitter bus0/%s %dus", targets[i%2], 50+13*i)
		}
	}
	return lines, nil
}

// ltClient replays the full session protocol once and returns the
// comparable response bodies: the base analysis plus one body per
// revision.
func ltClient(client *http.Client, base, specText string, script []string) ([][]byte, error) {
	post := func(path, body string, wantStatus int) ([]byte, error) {
		resp, err := client.Post(base+path, "text/plain", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != wantStatus {
			return nil, fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, data)
		}
		return data, nil
	}
	created, err := post("/v1/sessions", specText, http.StatusCreated)
	if err != nil {
		return nil, err
	}
	var sc SessionCreated
	if err := json.Unmarshal(created, &sc); err != nil {
		return nil, fmt.Errorf("session create response: %w", err)
	}

	bodies := make([][]byte, 0, len(script)+1)
	resp, err := client.Get(base + "/v1/sessions/" + sc.ID + "/analysis")
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET analysis: status %d: %s", resp.StatusCode, data)
	}
	bodies = append(bodies, data)

	for _, line := range script {
		data, err := post("/v1/sessions/"+sc.ID+"/changes", line, http.StatusOK)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, data)
	}
	return bodies, nil
}

// LoadTest drives the service end to end: a serial golden replay of a
// seeded revision script, then Clients concurrent clients replaying
// the same script against their own sessions on one shared store. It
// proves the session-reuse contract — every concurrent response is
// byte-identical to serial execution — and reports the aggregate
// what-if hit rate.
func LoadTest(cfg LoadTestConfig) (*LoadTestResult, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	spec := loadTestSpec(cfg.Seed)
	var specBuf bytes.Buffer
	if err := spec.Encode(&specBuf); err != nil {
		return nil, err
	}
	specText := specBuf.String()
	script, err := revisionScript(spec, cfg.Revisions)
	if err != nil {
		return nil, err
	}

	srv := New(Config{Workers: cfg.Workers})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Minute}

	// Phase 1: the serial golden replay.
	golden, err := ltClient(client, base, specText, script)
	if err != nil {
		return nil, fmt.Errorf("serial replay: %w", err)
	}

	res := &LoadTestResult{
		Clients: cfg.Clients, Revisions: cfg.Revisions,
		Requests: (cfg.Clients + 1) * (len(script) + 2),
	}

	// Phase 2: concurrent replays, each against its own session.
	type clientOut struct {
		bodies [][]byte
		err    error
	}
	outs := make([]clientOut, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			outs[c].bodies, outs[c].err = ltClient(client, base, specText, script)
		}(c)
	}
	wg.Wait()
	for c, out := range outs {
		if out.err != nil {
			return nil, fmt.Errorf("client %d: %w", c, out.err)
		}
		for i, body := range out.bodies {
			if !bytes.Equal(body, golden[i]) {
				res.Mismatches++
				if res.FirstMismatch == "" {
					res.FirstMismatch = fmt.Sprintf("client %d response %d", c, i)
				}
			}
		}
	}

	// The reported hit rate aggregates every live session.
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	var m MetricsResponse
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("metrics response: %w", err)
	}
	res.HitRatePct = m.WhatIf.SessionHitRate
	res.Elapsed = time.Since(start)
	return res, nil
}
