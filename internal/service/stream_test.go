package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/distrib"
	"repro/internal/scenario"
)

// startCampaign posts a small campaign and returns its id.
func startCampaign(t *testing.T, base, spec string) string {
	t.Helper()
	status, data := do(t, "POST", base+"/v1/campaigns?seeds=1&duration=50ms", spec)
	if status != http.StatusAccepted {
		t.Fatalf("create campaign: status %d: %s", status, data)
	}
	var started CampaignStarted
	if err := json.Unmarshal(data, &started); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return started.ID
}

// campaignReport polls until the campaign leaves "running", then
// fetches its plain-text report.
func campaignReport(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, data := do(t, "GET", base+"/v1/campaigns/"+id, "")
		if status != http.StatusOK {
			t.Fatalf("status: %d: %s", status, data)
		}
		var st CampaignStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if st.State == "done" {
			break
		}
		if st.State != "running" {
			t.Fatalf("campaign %s ended %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running after 30s", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
	status, data := do(t, "GET", base+"/v1/campaigns/"+id+"/report", "")
	if status != http.StatusOK {
		t.Fatalf("report: status %d: %s", status, data)
	}
	return string(data)
}

// TestCampaignLongPoll parks a long-poll on a running campaign and
// checks it answers with a terminal snapshot once the job finishes,
// and that a malformed wait is rejected.
func TestCampaignLongPoll(t *testing.T) {
	_, base := newTestServer(t)
	id := startCampaign(t, base, "seed = 3\ncount = 4\n")

	status, data := do(t, "GET", base+"/v1/campaigns/"+id+"?wait=10s", "")
	if status != http.StatusOK {
		t.Fatalf("long-poll: status %d: %s", status, data)
	}
	var st CampaignStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	// The poll may return on any observable change; follow the seq until
	// the terminal state.
	deadline := time.Now().Add(30 * time.Second)
	for st.State == "running" {
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running after 30s")
		}
		status, data = do(t, "GET",
			fmt.Sprintf("%s/v1/campaigns/%s?wait=10s&since=%d", base, id, st.Seq), "")
		if status != http.StatusOK {
			t.Fatalf("long-poll: status %d: %s", status, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	if st.State != "done" || st.Summary == nil {
		t.Fatalf("terminal snapshot: state %q summary %v", st.State, st.Summary)
	}

	if status, data = do(t, "GET", base+"/v1/campaigns/"+id+"?wait=bogus", ""); status != http.StatusBadRequest {
		t.Fatalf("bad wait: status %d: %s", status, data)
	}
}

// TestCampaignStream opens the SSE variant and checks the stream emits
// status events through to a terminal snapshot, with the SSE framing
// surviving the instrumentation and fallback wrappers.
func TestCampaignStream(t *testing.T) {
	_, base := newTestServer(t)
	id := startCampaign(t, base, "seed = 5\ncount = 4\n")

	req, err := http.NewRequest("GET", base+"/v1/campaigns/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	// The stream closes itself at the terminal state; read it whole.
	var events []string
	var last CampaignStatus
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			events = append(events, event)
		case strings.HasPrefix(line, "data: ") && event == "status":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
				t.Fatalf("status payload: %v", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("stream emitted no events")
	}
	if last.State != "done" || last.Summary == nil {
		t.Fatalf("final status: state %q summary %v", last.State, last.Summary)
	}
}

// TestDistributedCampaignOverService runs a campaign through a
// coordinator server fanning out to two worker servers and checks the
// rendered report is byte-identical to a plain local server's, and
// that the status carries shard bookkeeping and the SSE stream shard
// events.
func TestDistributedCampaignOverService(t *testing.T) {
	const spec = "seed = 9\ncount = 8\n"

	w1 := mustServer(t, Config{Workers: 1})
	hw1 := httptest.NewServer(w1.Handler())
	t.Cleanup(func() { hw1.Close(); w1.Close() })
	w2 := mustServer(t, Config{Workers: 1})
	hw2 := httptest.NewServer(w2.Handler())
	t.Cleanup(func() { hw2.Close(); w2.Close() })

	coord := mustServer(t, Config{
		Workers: 1, WorkerAddrs: []string{hw1.URL, hw2.URL}, ShardSize: 2,
	})
	hc := httptest.NewServer(coord.Handler())
	t.Cleanup(func() { hc.Close(); coord.Close() })

	_, baseLocal := newTestServer(t)

	id := startCampaign(t, hc.URL, spec)

	// Watch the distributed run over SSE to collect shard events.
	req, err := http.NewRequest("GET", hc.URL+"/v1/campaigns/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	shardEvents := 0
	var last CampaignStatus
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			if event == "shard" {
				shardEvents++
			}
		case strings.HasPrefix(line, "data: ") && event == "status":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
				t.Fatalf("status payload: %v", err)
			}
		}
	}
	if last.State != "done" {
		t.Fatalf("distributed campaign ended %q: %s", last.State, last.Error)
	}
	if last.Shards == nil || last.Shards.Total != 4 || last.Shards.Done != 4 {
		t.Fatalf("shard bookkeeping: %+v", last.Shards)
	}
	if shardEvents == 0 {
		t.Fatal("stream emitted no shard events")
	}

	distributed := campaignReport(t, hc.URL, id)
	serial := campaignReport(t, baseLocal, startCampaign(t, baseLocal, spec))
	if distributed != serial {
		t.Fatalf("distributed report differs from serial:\n--- distributed ---\n%s\n--- serial ---\n%s",
			distributed, serial)
	}
	if w1.worker.ShardsServed()+w2.worker.ShardsServed() != 4 {
		t.Fatalf("workers served %d+%d shards, want 4 total",
			w1.worker.ShardsServed(), w2.worker.ShardsServed())
	}
}

// TestShardEndpoint exercises POST /v1/shards directly: a valid
// request computes rows, a version-skewed one is rejected.
func TestShardEndpoint(t *testing.T) {
	_, base := newTestServer(t)

	corpus, err := scenario.Generate(scenario.Spec{Seed: 21, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := campaign.NewCorpusRef(corpus)
	if err != nil {
		t.Fatal(err)
	}
	reqBody, err := json.Marshal(distrib.ShardRequest{
		Version: distrib.WireVersion, Corpus: ref, Start: 0, Count: 3,
		Config: distrib.NewShardConfig(campaign.Config{
			Seeds: 1, Duration: 50 * time.Millisecond,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	status, data := do(t, "POST", base+distrib.ShardPath, string(reqBody))
	if status != http.StatusOK {
		t.Fatalf("shard: status %d: %s", status, data)
	}
	var shardResp distrib.ShardResponse
	if err := json.Unmarshal(data, &shardResp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(shardResp.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(shardResp.Rows))
	}

	if status, data = do(t, "POST", base+distrib.ShardPath, `{"version":99}`); status != http.StatusBadRequest {
		t.Fatalf("version skew: status %d: %s", status, data)
	}
}

// TestMetricsHistory checks /v1/metrics accumulates per-tenant history
// windows at the configured cadence.
func TestMetricsHistory(t *testing.T) {
	srv := mustServer(t, Config{Workers: 1, MetricsWindow: 20 * time.Millisecond})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	req, err := http.NewRequest("POST", hs.URL+"/v1/analyze", strings.NewReader(testSpec(t, 2)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, "oem-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d", resp.StatusCode)
	}

	time.Sleep(30 * time.Millisecond)
	var metrics MetricsResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, data := do(t, "GET", hs.URL+"/v1/metrics", "")
		if status != http.StatusOK {
			t.Fatalf("metrics: status %d", status)
		}
		if err := json.Unmarshal(data, &metrics); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(metrics.History) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if len(metrics.History) == 0 {
		t.Fatal("no history window captured")
	}
	found := false
	for _, w := range metrics.History {
		if w.Start == "" || w.End == "" {
			t.Fatalf("window missing timestamps: %+v", w)
		}
		for _, tw := range w.Tenants {
			if tw.Tenant == "oem-a" && tw.Requests >= 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("tenant oem-a not attributed in history: %+v", metrics.History)
	}
}
