package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TenantHeader names the request header that attributes work to a
// tenant. Requests without it share the anonymous bucket and quota.
const TenantHeader = "X-Tenant"

// anonymousTenant is the shared bucket of untagged requests.
const anonymousTenant = "anonymous"

// tenantOf extracts the request's tenant.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return anonymousTenant
}

// errQueueFull reports a full admission queue (load is shed).
var errQueueFull = errors.New("admission queue full")

// admission is the multi-tenant front door: per-tenant token buckets
// shed storms at the edge (429 + Retry-After), and a global bounded
// queue in front of a worker-slot semaphore converts overload into
// fast rejections instead of unbounded goroutine growth. Slots bound
// the analyses actually executing; the queue bounds the requests
// waiting for one; everything beyond that is shed.
type admission struct {
	queueDepth int
	rate       float64 // tokens per second per tenant; <= 0 disables
	burst      float64

	slots chan struct{}

	mu      sync.Mutex
	queued  int
	buckets map[string]*bucket
	// counters accumulate per-tenant admission outcomes for the
	// /v1/metrics history ring. Unlike buckets they are kept even when
	// rate limiting is disabled.
	counters map[string]*tenantCounter
	now      func() time.Time // injectable for tests

	executing atomic.Int64
	draining  atomic.Bool
}

// tenantCounter is one tenant's running admission totals.
type tenantCounter struct {
	requests uint64 // application requests attributed to the tenant
	shed     uint64 // of those, rejected by rate limit or full queue
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(maxClients, queueDepth int, rate float64, burst int) *admission {
	return &admission{
		queueDepth: queueDepth,
		rate:       rate,
		burst:      float64(burst),
		slots:      make(chan struct{}, maxClients),
		buckets:    map[string]*bucket{},
		counters:   map[string]*tenantCounter{},
		now:        time.Now,
	}
}

// count attributes one application request to its tenant; shed marks
// the rejected ones (rate limit, full queue).
func (a *admission) count(tenant string, shed bool) {
	a.mu.Lock()
	c := a.counters[tenant]
	if c == nil {
		c = &tenantCounter{}
		a.counters[tenant] = c
	}
	c.requests++
	if shed {
		c.shed++
	}
	a.mu.Unlock()
}

// snapshotTenants copies the per-tenant totals.
func (a *admission) snapshotTenants() map[string]tenantCounter {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]tenantCounter, len(a.counters))
	for t, c := range a.counters {
		out[t] = *c
	}
	return out
}

// takeToken draws one token from the tenant's bucket. When the bucket
// is empty it reports the duration until the next token — the
// Retry-After the client should honour.
func (a *admission) takeToken(tenant string) (retry time.Duration, ok bool) {
	if a.rate <= 0 {
		return 0, true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[tenant]
	now := a.now()
	if b == nil {
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	} else {
		b.tokens += a.rate * now.Sub(b.last).Seconds()
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / a.rate * float64(time.Second)), false
}

// wait claims a worker slot, queueing at most queueDepth requests.
// It fails fast with errQueueFull when the queue is at capacity and
// with the context error when the request's deadline expires while
// queued.
func (a *admission) wait(ctx context.Context) error {
	a.mu.Lock()
	if a.queued >= a.queueDepth {
		a.mu.Unlock()
		return errQueueFull
	}
	a.queued++
	a.mu.Unlock()

	defer func() {
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		a.executing.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees the worker slot claimed by a successful wait.
func (a *admission) release() {
	a.executing.Add(-1)
	<-a.slots
}

// snapshot reports the queue state for /v1/metrics.
func (a *admission) snapshot() (queued int, executing int, tenants int) {
	a.mu.Lock()
	queued = a.queued
	tenants = len(a.buckets)
	a.mu.Unlock()
	return queued, int(a.executing.Load()), tenants
}

// retryAfter renders d as a Retry-After header value (whole seconds,
// minimum 1 — the header has no sub-second form).
func retryAfter(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// deferredWriter buffers a handler's response so the admission layer
// can race it against the request deadline: on completion the buffer
// is flushed to the real writer; on expiry the buffer is abandoned and
// the client gets the structured 503 instead. The handler goroutine is
// the only writer until done is signalled, so no lock is needed.
type deferredWriter struct {
	header http.Header
	status int
	body   []byte
}

func newDeferredWriter() *deferredWriter {
	return &deferredWriter{header: make(http.Header)}
}

func (d *deferredWriter) Header() http.Header { return d.header }

func (d *deferredWriter) WriteHeader(status int) {
	if d.status == 0 {
		d.status = status
	}
}

func (d *deferredWriter) Write(p []byte) (int, error) {
	if d.status == 0 {
		d.status = http.StatusOK
	}
	d.body = append(d.body, p...)
	return len(p), nil
}

// flushTo replays the buffered response onto w.
func (d *deferredWriter) flushTo(w http.ResponseWriter) {
	for k, vs := range d.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	status := d.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	w.Write(d.body)
}

// admitted wraps an application handler with the full admission chain:
// drain gate, per-tenant token bucket, request deadline, bounded queue
// and worker slot. Operational routes (healthz, metrics) are not
// admitted — they must answer even when the service is saturated.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.adm.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, CodeDraining,
				"server is draining; retry against another instance")
			return
		}
		tenant := tenantOf(r)
		if retry, ok := s.adm.takeToken(tenant); !ok {
			s.adm.count(tenant, true)
			w.Header().Set("Retry-After", retryAfter(retry))
			writeErr(w, http.StatusTooManyRequests, CodeRateLimited,
				"tenant %q is over its request rate; retry after %s s", tenant, retryAfter(retry))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		_, qsp := obs.StartSpan(ctx, "admission.queue_wait")
		err := s.adm.wait(ctx)
		qsp.SetBool("admitted", err == nil)
		qsp.End()
		if err != nil {
			if errors.Is(err, errQueueFull) {
				s.adm.count(tenant, true)
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests, CodeQueueFull,
					"admission queue is full (%d waiting); load shed", s.cfg.QueueDepth)
				return
			}
			s.adm.count(tenant, false)
			writeErr(w, http.StatusServiceUnavailable, CodeTimeout,
				"request spent its %v budget queued for a worker slot", s.cfg.RequestTimeout)
			return
		}
		s.adm.count(tenant, false)

		// Race the handler against the remaining deadline. The handler
		// goroutine owns the deferred buffer and the worker slot: on
		// expiry the response below is the 503 and the handler's late
		// result is discarded when it finishes (work is bounded, the
		// slot is released then — MaxClients stays honest).
		dw := newDeferredWriter()
		done := make(chan struct{})
		req := r.WithContext(ctx)
		go func() {
			defer close(done)
			defer s.adm.release()
			h(dw, req)
		}()
		select {
		case <-done:
			dw.flushTo(w)
		case <-ctx.Done():
			writeErr(w, http.StatusServiceUnavailable, CodeTimeout,
				"request exceeded its %v budget", s.cfg.RequestTimeout)
		}
	}
}
