package service

import (
	"strings"
	"testing"
	"time"
)

// TestLoadTestShort runs a reduced selftest: concurrent clients must
// replay the revision script byte-identically, shed requests must all
// carry Retry-After, the service must emit no unintended 5xx, the
// shared store must lift the session hit rate over the contract
// threshold, and the drain phase must resume its campaign
// bit-identically.
func TestLoadTestShort(t *testing.T) {
	res, err := LoadTest(LoadTestConfig{Clients: 6, Revisions: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("selftest mismatches: %d (first %s)", res.Mismatches, res.FirstMismatch)
	}
	if res.HitRatePct <= 50 {
		t.Fatalf("session hit rate %.1f%%, want > 50%%", res.HitRatePct)
	}
	if res.Unintended5xx != 0 || res.ShedMissingRetryAfter != 0 {
		t.Fatalf("robustness contract: %+v", res)
	}
	if !res.DrainOK {
		t.Fatalf("drain phase: %s", res.DrainDetail)
	}
	if !res.Passed() {
		t.Fatalf("Passed() = false for %+v", res)
	}
	if len(res.Routes) == 0 {
		t.Fatal("no per-route latency distributions")
	}
	for _, rt := range res.Routes {
		if rt.Count == 0 || rt.P99 < rt.P50 || rt.P999 < rt.P99 {
			t.Fatalf("route %s: inconsistent distribution %+v", rt.Route, rt)
		}
	}
	out := res.Render()
	for _, frag := range []string{"byte-identical", "> 50% required: ok", "p999=", "drain/restore: ok"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render misses %q:\n%s", frag, out)
		}
	}
}

// TestLoadTestSheds squeezes the storm through a one-slot, shallow
// queue with a starved token bucket: shedding must occur, every shed
// must carry Retry-After, and the replies that do get through must
// still be byte-identical.
func TestLoadTestSheds(t *testing.T) {
	res, err := LoadTest(LoadTestConfig{
		Clients: 8, Revisions: 4, Workers: 1,
		SkipDrain: true,
		Server: Config{
			MaxClients: 1, QueueDepth: 2,
			TenantRate: 30, TenantBurst: 5,
			RequestTimeout: time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("storm through a 1-slot queue shed nothing: %+v", res)
	}
	if res.ShedMissingRetryAfter != 0 {
		t.Fatalf("%d shed responses missed Retry-After", res.ShedMissingRetryAfter)
	}
	if res.Mismatches != 0 {
		t.Fatalf("mismatches under shedding: %d (first %s)", res.Mismatches, res.FirstMismatch)
	}
	if res.Unintended5xx != 0 {
		t.Fatalf("unintended 5xx under shedding: %d", res.Unintended5xx)
	}
}
