package service

import (
	"strings"
	"testing"
)

// TestLoadTestShort runs a reduced selftest: concurrent clients must
// replay the revision script byte-identically and the shared store
// must lift the session hit rate over the contract threshold.
func TestLoadTestShort(t *testing.T) {
	res, err := LoadTest(LoadTestConfig{Clients: 4, Revisions: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("selftest mismatches: %d (first %s)", res.Mismatches, res.FirstMismatch)
	}
	if res.HitRatePct <= 50 {
		t.Fatalf("session hit rate %.1f%%, want > 50%%", res.HitRatePct)
	}
	if !res.Passed() {
		t.Fatalf("Passed() = false for %+v", res)
	}
	out := res.Render()
	for _, frag := range []string{"byte-identical", "> 50% required: ok"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render misses %q:\n%s", frag, out)
		}
	}
}
