package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/whatif"
)

// Config parameterises a Server. The zero value serves with defaults.
type Config struct {
	// StoreCapacity bounds the shared what-if memo store in cost units
	// (<= 0 selects whatif.DefaultCapacity).
	StoreCapacity int
	// SessionTTL is the idle lifetime of persistent sessions (<= 0
	// selects whatif.DefaultSessionTTL).
	SessionTTL time.Duration
	// Workers bounds each analysis fan-out (<= 0 selects GOMAXPROCS).
	// Responses are bit-identical for every worker count.
	Workers int
	// MaxBodyBytes caps uploaded specs and change scripts (default 1 MiB).
	MaxBodyBytes int64
	// MaxIterations bounds the compositional fixpoint (<= 0 selects
	// core.DefaultMaxIterations).
	MaxIterations int

	// MaxClients bounds the requests executing concurrently (the worker
	// slots; 0 selects 2x GOMAXPROCS).
	MaxClients int
	// QueueDepth bounds the requests waiting for a slot; beyond it load
	// is shed with 429 + Retry-After (0 selects 256).
	QueueDepth int
	// TenantRate is each tenant's token-bucket refill in requests per
	// second (0 selects 250; negative disables rate limiting).
	TenantRate float64
	// TenantBurst is the bucket depth (0 selects 2x TenantRate).
	TenantBurst int
	// TenantQuota bounds the live sessions per tenant; at the quota a
	// tenant's new session evicts its own oldest idle one (0 selects
	// 64; negative disables the quota).
	TenantQuota int
	// RequestTimeout is the per-request budget, queue wait included; on
	// expiry the client gets a structured 503 (0 selects 30s).
	RequestTimeout time.Duration
	// MaxCampaignScenarios caps the corpus size a campaign upload may
	// request (0 selects 20000; negative disables the cap).
	MaxCampaignScenarios int

	// CacheDir, when non-empty, backs the analysis store with an
	// on-disk content-addressed second level: converged results survive
	// restarts and are shared with campaign scenarios and the shard
	// worker endpoint. The disk level never changes responses or
	// session statistics — it only accelerates recomputation.
	CacheDir string
	// CacheMaxBytes bounds the disk level (<= 0 selects
	// cache.DefaultDiskBytes).
	CacheMaxBytes int64
	// RemoteCache, when non-empty, is the base URL of a `symtago
	// cacheserver` process composed under the local tiers as the
	// fleet-shared third level. Like the disk level it never changes a
	// response byte: remote failures degrade to local-only behind a
	// circuit breaker, and every degraded answer is just a miss.
	RemoteCache string

	// WorkerAddrs, when non-empty, runs campaigns distributed: the
	// server coordinates shards over these worker base URLs (symtago
	// worker processes, or other serve instances — every server mounts
	// POST /v1/shards). Reports stay byte-identical to local runs.
	WorkerAddrs []string
	// ShardSize bounds scenarios per distributed shard (<= 0 selects
	// campaign.DefaultShardSize).
	ShardSize int
	// PipelineDepth bounds in-flight shards per worker (<= 0 selects
	// distrib.DefaultPipelineDepth; 1 disables pipelining).
	PipelineDepth int
	// ShardTimeout is the per-attempt deadline of one shard (<= 0
	// selects the distrib default).
	ShardTimeout time.Duration

	// MetricsWindow is the capture period of the /v1/metrics history
	// ring (0 selects 60s; negative disables the ring).
	MetricsWindow time.Duration
	// MetricsHistory bounds how many windows the ring keeps (<= 0
	// selects 32).
	MetricsHistory int

	// TraceSample is the fraction of unsolicited requests traced
	// (0 selects obs.DefaultSampleRate; negative disables sampling).
	// Requests carrying an X-Trace-Id header are always traced, and
	// responses and reports are byte-identical traced or not.
	TraceSample float64
	// TraceBuffer bounds the traces retained for GET /v1/trace/{id}
	// (<= 0 selects obs.DefaultTraceBuffer).
	TraceBuffer int
	// FlightSlowest sizes the flight recorder — the N slowest
	// operations kept for GET /v1/debug/slowest (0 selects
	// obs.DefaultFlightSlowest; negative disables the recorder).
	FlightSlowest int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.TenantRate == 0 {
		c.TenantRate = 250
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = int(2 * c.TenantRate)
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.TenantQuota == 0 {
		c.TenantQuota = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxCampaignScenarios == 0 {
		c.MaxCampaignScenarios = 20000
	}
	if c.MetricsWindow == 0 {
		c.MetricsWindow = time.Minute
	}
	if c.MetricsHistory <= 0 {
		c.MetricsHistory = 32
	}
	if c.TraceSample == 0 {
		c.TraceSample = obs.DefaultSampleRate
	}
	return c
}

// Server is the long-running analysis service: it owns the shared
// what-if store, the session registry and the campaign job table, and
// serves the /v1 API behind the admission layer. Create with New,
// expose with Handler.
type Server struct {
	cfg       Config
	store     cache.Store   // session/analyze memo store (LRU, or Tiered over l2/remote)
	l2        *cache.Disk   // nil unless CacheDir is configured
	remote    *cache.Remote // nil unless RemoteCache is configured
	shared    cache.Store   // the process-shared level under store (nil, l2, remote, or l2 over remote)
	reg       *whatif.Registry
	metrics   *metrics
	history   *metricsHistory
	adm       *admission
	worker    *distrib.Worker
	collector *obs.Collector
	flight    *obs.FlightRecorder // nil when FlightSlowest < 0
	shardObs  shardCounters
	mux       *http.ServeMux

	ctx    context.Context // parent of all campaign jobs
	cancel context.CancelFunc

	jobsMu  sync.Mutex
	jobs    map[string]*campaignJob
	nextJob int64
}

// New returns a ready-to-serve Server. It fails only when a configured
// CacheDir cannot be opened.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var l2 *cache.Disk
	var remote *cache.Remote
	var store cache.Store = whatif.NewStore(cfg.StoreCapacity)
	if cfg.CacheDir != "" {
		var err error
		if l2, err = cache.NewDisk(cfg.CacheDir, cfg.CacheMaxBytes); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	if cfg.RemoteCache != "" {
		var err error
		if remote, err = cache.NewRemote(cache.RemoteConfig{BaseURL: cfg.RemoteCache}); err != nil {
			return nil, fmt.Errorf("service: remote cache: %w", err)
		}
	}
	// The shared second level stacks local disk over the fleet tier
	// (remote hits are promoted onto disk); the memo LRU sits on top.
	// Composition by nesting keeps the pinned-stats contract: session
	// counters see only primary-level hits, so responses stay
	// byte-identical for any cache state.
	shared := sharedLevel(l2, remote)
	if shared != nil {
		store = cache.NewTiered(store, shared)
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := whatif.NewRegistry(cfg.SessionTTL)
	if cfg.TenantQuota > 0 {
		reg.SetTenantQuota(cfg.TenantQuota)
	}
	var flight *obs.FlightRecorder
	if cfg.FlightSlowest >= 0 {
		flight = obs.NewFlightRecorder(cfg.FlightSlowest)
	}
	s := &Server{
		cfg:       cfg,
		store:     store,
		l2:        l2,
		remote:    remote,
		shared:    shared,
		reg:       reg,
		metrics:   newMetrics(),
		history:   newMetricsHistory(cfg.MetricsWindow, cfg.MetricsHistory),
		adm:       newAdmission(cfg.MaxClients, cfg.QueueDepth, cfg.TenantRate, cfg.TenantBurst),
		worker:    distrib.NewWorker(distrib.WorkerConfig{Workers: cfg.Workers, Cache: shared}),
		collector: obs.NewCollector(cfg.TraceSample, cfg.TraceBuffer, 0),
		flight:    flight,
		ctx:       ctx,
		cancel:    cancel,
		jobs:      map[string]*campaignJob{},
	}
	mux := http.NewServeMux()
	// Application routes pass the admission chain; operational routes
	// (health, metrics, shards) bypass it — health and metrics must
	// answer when the service is saturated, and shard deadlines belong
	// to the coordinating peer, not the local admission budget.
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, s.admitted(h)))
	}
	ops := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	ops("GET /v1/healthz", s.handleHealthz)
	ops("GET /v1/metrics", s.handleMetrics)
	ops("GET /metrics", s.handlePromMetrics)
	ops("GET /v1/trace/{id}", s.handleTrace)
	ops("GET /v1/debug/slowest", s.handleSlowest)
	ops("POST "+distrib.ShardPath, s.worker.ShardHandler())
	route("POST /v1/analyze", s.handleAnalyze)
	route("POST /v1/simulate", s.handleSimulate)
	route("POST /v1/sessions", s.handleSessionCreate)
	route("GET /v1/sessions/{id}", s.handleSessionInfo)
	route("GET /v1/sessions/{id}/analysis", s.handleSessionAnalysis)
	route("POST /v1/sessions/{id}/changes", s.handleSessionChanges)
	route("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	route("POST /v1/campaigns", s.handleCampaignCreate)
	// Status dispatches on the request: SSE and long-poll variants wait
	// server-side and bypass admission (a watcher must not hold a worker
	// slot or be killed by the request deadline); the plain JSON
	// snapshot is admitted like any application request.
	mux.HandleFunc("GET /v1/campaigns/{id}", s.instrument("GET /v1/campaigns/{id}",
		s.dispatchCampaignStatus))
	route("GET /v1/campaigns/{id}/report", s.handleCampaignReport)
	route("POST /v1/campaigns/{id}/cancel", s.handleCampaignCancel)
	route("POST /v1/campaigns/{id}/resume", s.handleCampaignResume)
	route("DELETE /v1/campaigns/{id}", s.handleCampaignDelete)
	s.mux = mux
	return s, nil
}

// sharedLevel composes the process-shared cache level from the
// optional disk and remote tiers: disk alone, remote alone, disk over
// remote, or nil — without ever boxing a typed nil into the interface.
func sharedLevel(l2 *cache.Disk, remote *cache.Remote) cache.Store {
	switch {
	case l2 != nil && remote != nil:
		return cache.NewTiered(l2, remote)
	case l2 != nil:
		return l2
	case remote != nil:
		return remote
	}
	return nil
}

// Handler returns the service's HTTP handler. Error responses that
// escape the handlers (the mux's own 404/405) are rewritten into the
// uniform JSON error body.
func (s *Server) Handler() http.Handler { return jsonFallback(s.mux) }

// Close cancels every running campaign job and flushes the remote
// tier's write-behind queue. In-flight requests finish normally; the
// owning http.Server handles connection shutdown.
func (s *Server) Close() {
	s.cancel()
	if s.remote != nil {
		s.remote.Close()
	}
}

// StartDraining flips the admission gate: every subsequent application
// request is answered 503/draining while operational routes stay up.
func (s *Server) StartDraining() { s.adm.draining.Store(true) }

// Draining reports whether the admission gate is closed.
func (s *Server) Draining() bool { return s.adm.draining.Load() }

// Drain performs the graceful-shutdown protocol: stop admitting, let
// running campaign jobs finish until ctx expires, then cancel the
// stragglers at their next scenario boundary and — when dir is
// non-empty — checkpoint every unfinished job there as <id>.json so a
// restarted server resumes them bit-identically (RestoreCampaigns).
// It returns how many jobs were checkpointed.
func (s *Server) Drain(ctx context.Context, dir string) (checkpointed int, err error) {
	s.StartDraining()

	running := func() []*campaignJob {
		s.jobsMu.Lock()
		defer s.jobsMu.Unlock()
		var rs []*campaignJob
		for _, cj := range s.jobs {
			if cj.stateNow() == "running" {
				rs = append(rs, cj)
			}
		}
		return rs
	}

	// Phase 1: wait for jobs to finish on their own within the budget.
	for len(running()) > 0 {
		select {
		case <-ctx.Done():
			// Phase 2: cancel the stragglers; each stops at its next
			// scenario boundary with every completed row preserved.
			for _, cj := range running() {
				cj.mu.Lock()
				if cj.cancel != nil {
					cj.cancel()
				}
				cj.mu.Unlock()
			}
		case <-time.After(10 * time.Millisecond):
		}
	}

	// Phase 3: checkpoint everything that did not finish.
	if dir != "" {
		s.jobsMu.Lock()
		jobs := make([]*campaignJob, 0, len(s.jobs))
		for _, cj := range s.jobs {
			jobs = append(jobs, cj)
		}
		s.jobsMu.Unlock()
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })
		for _, cj := range jobs {
			if cj.stateNow() == "done" {
				continue
			}
			if werr := writeCheckpoint(dir, cj); werr != nil && err == nil {
				err = werr
			} else if werr == nil {
				checkpointed++
			}
		}
	}
	s.cancel()
	return checkpointed, err
}

// writeCheckpoint persists one job under dir/<id>.json.
func writeCheckpoint(dir string, cj *campaignJob) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, cj.id+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cj.job.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// RestoreCampaigns loads every <id>.json checkpoint under dir written
// by a previous Drain, registers the jobs under fresh ids, starts them
// over their pending scenarios and removes the consumed files. The
// eventual reports are bit-identical to uninterrupted runs.
func (s *Server) RestoreCampaigns(dir string) (restored int, err error) {
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return 0, nil
		}
		return 0, rerr
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, oerr := os.Open(path)
		if oerr != nil {
			if err == nil {
				err = oerr
			}
			continue
		}
		job, jerr := campaign.RestoreJob(f)
		f.Close()
		if jerr != nil {
			if err == nil {
				err = fmt.Errorf("restore %s: %w", name, jerr)
			}
			continue
		}
		s.registerJob(job, nil, 0)
		restored++
		os.Remove(path)
	}
	return restored, err
}

// registerJob assigns the next id, starts the job and publishes it.
// Start happens before publication, so no observer can see a stateless
// job (a cancel racing the create would otherwise be silently lost).
// With WorkerAddrs configured the job runs distributed; resume reuses
// the same runner, so a resumed campaign fans out again. When tr is a
// recording trace (the creating request was traced), the job runs
// under it with parent as the root — the trace outlives the request
// and collects the coordinator's and workers' spans.
func (s *Server) registerJob(job *campaign.Job, tr *obs.Trace, parent uint64) *campaignJob {
	s.jobsMu.Lock()
	s.nextJob++
	cj := &campaignJob{id: fmt.Sprintf("c%d", s.nextJob), job: job, watch: make(chan struct{})}
	s.jobsMu.Unlock()
	traced := func(ctx context.Context) context.Context {
		if tr == nil {
			return ctx
		}
		return obs.ContextWithSpanID(obs.ContextWithTrace(ctx, tr), parent)
	}
	if len(s.cfg.WorkerAddrs) > 0 {
		cj.distributed = true
		cj.run = func(ctx context.Context) (*campaign.Report, error) {
			cj.mu.Lock()
			cj.shards = ShardStatus{Total: len(job.PendingRanges(s.cfg.ShardSize)), Workers: len(s.cfg.WorkerAddrs)}
			cj.bump()
			cj.mu.Unlock()
			return distrib.Run(traced(ctx), job, distrib.Options{
				Workers:       s.cfg.WorkerAddrs,
				ShardSize:     s.cfg.ShardSize,
				PipelineDepth: s.cfg.PipelineDepth,
				ShardTimeout:  s.cfg.ShardTimeout,
				OnEvent: func(e distrib.Event) {
					s.shardObs.observe(e)
					cj.record(e)
				},
			})
		}
	} else {
		cj.run = func(ctx context.Context) (*campaign.Report, error) {
			return job.Run(traced(ctx))
		}
	}
	cj.mu.Lock()
	cj.start(s.ctx)
	cj.mu.Unlock()
	s.jobsMu.Lock()
	s.jobs[cj.id] = cj
	s.jobsMu.Unlock()
	return cj
}

// writeJSON marshals v with a trailing newline (curl-friendly) and a
// deterministic byte sequence for a given value.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Wire types are marshal-safe by construction; this is a bug,
		// but even bugs answer in the uniform JSON shape.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":%q,\"code\":%q}\n", err.Error(), CodeInternal)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeErr emits the uniform JSON error body: a human-readable message
// plus the machine-readable code.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query %s: %v", key, err)
	}
	return n, nil
}

// queryDuration parses a duration query parameter with a default.
func queryDuration(r *http.Request, key string, def time.Duration) (time.Duration, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("query %s: %v", key, err)
	}
	return d, nil
}

// parseSpecBody parses an uploaded corpus spec (the system wire
// format).
func parseSpecBody(body []byte) (scenario.Spec, error) {
	return scenario.ParseSpec(bytes.NewReader(body))
}

// buildScenario materialises scenario `index` of the uploaded spec.
// Scenario plans are derived per index (identical to the scenario's
// position in any corpus of the same spec), so the cost is one plan
// regardless of the index or the spec's count.
func buildScenario(body []byte, index int) (*core.System, []whatif.SystemChange, error) {
	if index < 0 {
		return nil, nil, fmt.Errorf("index %d must be non-negative", index)
	}
	sp, err := parseSpecBody(body)
	if err != nil {
		return nil, nil, err
	}
	sc, err := scenario.GenerateOne(sp, index)
	if err != nil {
		return nil, nil, err
	}
	return sc.Build()
}
