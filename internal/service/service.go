package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/whatif"
)

// Config parameterises a Server. The zero value serves with defaults.
type Config struct {
	// StoreCapacity bounds the shared what-if memo store in cost units
	// (<= 0 selects whatif.DefaultCapacity).
	StoreCapacity int
	// SessionTTL is the idle lifetime of persistent sessions (<= 0
	// selects whatif.DefaultSessionTTL).
	SessionTTL time.Duration
	// Workers bounds each analysis fan-out (<= 0 selects GOMAXPROCS).
	// Responses are bit-identical for every worker count.
	Workers int
	// MaxBodyBytes caps uploaded specs and change scripts (default 1 MiB).
	MaxBodyBytes int64
	// MaxIterations bounds the compositional fixpoint (<= 0 selects
	// core.DefaultMaxIterations).
	MaxIterations int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server is the long-running analysis service: it owns the shared
// what-if store, the session registry and the campaign job table, and
// serves the /v1 API. Create with New, expose with Handler.
type Server struct {
	cfg     Config
	store   *whatif.Store
	reg     *whatif.Registry
	metrics *metrics
	mux     *http.ServeMux

	ctx    context.Context // parent of all campaign jobs
	cancel context.CancelFunc

	jobsMu  sync.Mutex
	jobs    map[string]*campaignJob
	nextJob int64
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		store:   whatif.NewStore(cfg.StoreCapacity),
		reg:     whatif.NewRegistry(cfg.SessionTTL),
		metrics: newMetrics(),
		ctx:     ctx,
		cancel:  cancel,
		jobs:    map[string]*campaignJob{},
	}
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("GET /v1/healthz", s.handleHealthz)
	route("GET /v1/metrics", s.handleMetrics)
	route("POST /v1/analyze", s.handleAnalyze)
	route("POST /v1/simulate", s.handleSimulate)
	route("POST /v1/sessions", s.handleSessionCreate)
	route("GET /v1/sessions/{id}", s.handleSessionInfo)
	route("GET /v1/sessions/{id}/analysis", s.handleSessionAnalysis)
	route("POST /v1/sessions/{id}/changes", s.handleSessionChanges)
	route("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	route("POST /v1/campaigns", s.handleCampaignCreate)
	route("GET /v1/campaigns/{id}", s.handleCampaignStatus)
	route("GET /v1/campaigns/{id}/report", s.handleCampaignReport)
	route("POST /v1/campaigns/{id}/cancel", s.handleCampaignCancel)
	route("POST /v1/campaigns/{id}/resume", s.handleCampaignResume)
	route("DELETE /v1/campaigns/{id}", s.handleCampaignDelete)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels every running campaign job. In-flight requests finish
// normally; the owning http.Server handles connection shutdown.
func (s *Server) Close() { s.cancel() }

// writeJSON marshals v with a trailing newline (curl-friendly) and a
// deterministic byte sequence for a given value.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Wire types are marshal-safe by construction; this is a bug.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeErr emits the uniform JSON error body.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// readBody slurps a size-capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return nil, false
	}
	return data, true
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query %s: %v", key, err)
	}
	return n, nil
}

// queryDuration parses a duration query parameter with a default.
func queryDuration(r *http.Request, key string, def time.Duration) (time.Duration, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("query %s: %v", key, err)
	}
	return d, nil
}

// parseSpecBody parses an uploaded corpus spec (the system wire
// format).
func parseSpecBody(body []byte) (scenario.Spec, error) {
	return scenario.ParseSpec(bytes.NewReader(body))
}

// buildScenario materialises scenario `index` of the uploaded spec.
// Scenario plans are derived per index (identical to the scenario's
// position in any corpus of the same spec), so the cost is one plan
// regardless of the index or the spec's count.
func buildScenario(body []byte, index int) (*core.System, []whatif.SystemChange, error) {
	if index < 0 {
		return nil, nil, fmt.Errorf("index %d must be non-negative", index)
	}
	sp, err := parseSpecBody(body)
	if err != nil {
		return nil, nil, err
	}
	sc, err := scenario.GenerateOne(sp, index)
	if err != nil {
		return nil, nil, err
	}
	return sc.Build()
}
