package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cacheserver"
)

// newRemoteTestServer starts a real cacheserver plus a service wired
// to it as the fleet tier (with a local disk level, so the full
// three-tier stack is live).
func newRemoteTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	disk, err := cache.NewDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(cacheserver.New(disk).Handler())
	t.Cleanup(cs.Close)
	srv := mustServer(t, Config{Workers: 1, CacheDir: t.TempDir(), RemoteCache: cs.URL})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs.URL
}

// TestPromMetricsRemoteTier: with a remote cache configured, /metrics
// exposes all three tiers plus the remote-client families (breaker
// state, write-behind pipeline, fetch latency histogram).
func TestPromMetricsRemoteTier(t *testing.T) {
	_, base := newRemoteTestServer(t)
	if status, body := do(t, "POST", base+"/v1/analyze", testSpec(t, 5)); status != http.StatusOK {
		t.Fatalf("analyze: %d %s", status, body)
	}
	status, body := do(t, "GET", base+"/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d %s", status, body)
	}
	text := string(body)
	for _, want := range []string{
		`symtago_cache_hits_total{tier="l1"}`,
		`symtago_cache_hits_total{tier="l2"}`,
		`symtago_cache_hits_total{tier="remote"}`,
		"# TYPE symtago_remote_cache_gets_total counter",
		"symtago_remote_cache_errors_total 0",
		"symtago_remote_cache_degraded_total 0",
		`symtago_remote_cache_puts_total{outcome="queued"}`,
		"symtago_remote_cache_breaker_state 0",
		"symtago_remote_cache_breaker_opens_total 0",
		"# TYPE symtago_remote_cache_fetch_seconds histogram",
		`symtago_remote_cache_fetch_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRemoteTierResponseByteIdentical: the same request against a
// remote-tier server and a plain one produces byte-identical response
// bodies, cold and warm — the fleet tier must be invisible in every
// payload.
func TestRemoteTierResponseByteIdentical(t *testing.T) {
	_, plain := newTestServer(t)
	_, remote := newRemoteTestServer(t)
	spec := testSpec(t, 11)
	_, want := do(t, "POST", plain+"/v1/analyze", spec)
	for _, pass := range []string{"cold", "warm"} {
		status, got := do(t, "POST", remote+"/v1/analyze", spec)
		if status != http.StatusOK {
			t.Fatalf("%s analyze: %d %s", pass, status, got)
		}
		if string(got) != string(want) {
			t.Fatalf("%s remote-tier response differs from plain server", pass)
		}
	}
}

// TestTraceRemoteSpan: a traced request through the three-tier stack
// records the aggregated cache.remote span once remote traffic
// occurred.
func TestTraceRemoteSpan(t *testing.T) {
	_, base := newRemoteTestServer(t)
	const id = "ffeeddccbbaa99887766554433221100"
	status, body, _ := doTraced(t, "POST", base+"/v1/analyze", testSpec(t, 7), id)
	if status != http.StatusOK {
		t.Fatalf("traced analyze: %d %s", status, body)
	}
	status, tbody := do(t, "GET", base+"/v1/trace/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", status, tbody)
	}
	var export struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbody, &export); err != nil {
		t.Fatalf("trace body: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range export.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"cache.l1", "cache.remote"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}
