package service

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/distrib"
	"repro/internal/obs"
)

// tracedStoreKey keys the request's tracing cache wrapper in its
// context.
type tracedStoreKey struct{}

// instrument wraps a handler, attributing its requests to route and —
// when the collector samples the request or the client supplied an
// X-Trace-Id — recording a root span plus aggregated cache-tier spans.
// Traced responses carry the trace ID back in the X-Trace-Id response
// header; bodies are never touched, so responses stay byte-identical
// with tracing on or off. The route's counters are registered here, at
// mux construction, so the per-request observe path is lock-free.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := s.metrics.register(route)
	return func(w http.ResponseWriter, r *http.Request) {
		tr, parent := s.collector.StartRequest(r)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		startedAt := time.Now()
		if tr == nil {
			// Untraced fast path: atomic counters only.
			h(rec, r)
			rm.observe(rec.status, time.Since(startedAt))
			return
		}
		w.Header().Set(obs.TraceIDHeader, tr.ID().String())
		ctx := obs.ContextWithTrace(r.Context(), tr)
		ctx = obs.ContextWithSpanID(ctx, parent)
		ctx, sp := obs.StartSpan(ctx, route)
		ts := obs.NewTracedStore(s.store)
		ctx = context.WithValue(ctx, tracedStoreKey{}, ts)
		h(rec, r.WithContext(ctx))
		elapsed := time.Since(startedAt)
		sp.SetInt("status", int64(rec.status))
		sp.SetAttr("tenant", tenantOf(r))
		sp.End()
		ts.Finish(tr, sp.ID())
		s.flight.Offer(route, startedAt, elapsed, tr.Subtree(sp.ID()))
		rm.observe(rec.status, elapsed)
	}
}

// storeFor returns the request's view of the shared analysis store:
// the tracing wrapper installed by instrument on traced requests, the
// bare store otherwise. Both views satisfy cache.Leveled, so sessions
// count hits identically through either — the wrapper only observes.
func (s *Server) storeFor(r *http.Request) cache.Store {
	if ts, ok := r.Context().Value(tracedStoreKey{}).(*obs.TracedStore); ok && ts != nil {
		return ts
	}
	return s.store
}

// shardCounters aggregates coordinator-side shard events across all
// distributed campaign jobs, for the Prometheus exposition.
type shardCounters struct {
	dispatched     atomic.Uint64
	done           atomic.Uint64
	failed         atomic.Uint64
	retries        atomic.Uint64
	droppedWorkers atomic.Uint64
	latencyNS      atomic.Uint64 // summed latency of completed shards
	wireBytes      atomic.Uint64 // shard response bodies as they travelled
	inflight       atomic.Int64  // dispatched minus settled (pipeline occupancy)
}

func (c *shardCounters) observe(e distrib.Event) {
	switch e.Type {
	case distrib.EventDispatch:
		c.dispatched.Add(1)
		c.inflight.Add(1)
		if e.Attempt > 1 {
			c.retries.Add(1)
		}
	case distrib.EventShardDone:
		c.done.Add(1)
		c.inflight.Add(-1)
		if e.ElapsedNS > 0 {
			c.latencyNS.Add(uint64(e.ElapsedNS))
		}
		if e.Bytes > 0 {
			c.wireBytes.Add(uint64(e.Bytes))
		}
	case distrib.EventShardFailed:
		c.failed.Add(1)
		c.inflight.Add(-1)
	case distrib.EventWorkerDropped:
		c.droppedWorkers.Add(1)
	}
}

// handleTrace serves GET /v1/trace/{id}: the retained trace as Chrome
// trace_event JSON, loadable directly into chrome://tracing or
// Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.collector.Get(r.PathValue("id"))
	if tr == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, "unknown trace %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tr.WriteChrome(w)
}

// handleSlowest serves GET /v1/debug/slowest: the flight recorder's
// retained slowest operations with their span trees.
func (s *Server) handleSlowest(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteJSON(w)
}

// handlePromMetrics serves GET /metrics in the Prometheus text
// exposition format — the same counters as the JSON /v1/metrics plus
// the shard and trace families, emitted in a fixed family order with
// sorted label sets so consecutive scrapes diff cleanly.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewProm(w)

	p.Family("symtago_uptime_seconds", "gauge", "Seconds since the server started.")
	p.Value("symtago_uptime_seconds", nil, time.Since(s.metrics.start).Seconds())

	routes := s.metrics.snapshot()
	p.Family("symtago_requests_total", "counter", "Requests by route.")
	for _, rm := range routes {
		p.Uint("symtago_requests_total", obs.Labels{"route", rm.Route}, rm.Count)
	}
	p.Family("symtago_request_errors_total", "counter", "Responses with status >= 400 by route.")
	for _, rm := range routes {
		p.Uint("symtago_request_errors_total", obs.Labels{"route", rm.Route}, rm.Errors)
	}
	p.Family("symtago_request_shed_total", "counter", "Requests shed (429) by route.")
	for _, rm := range routes {
		p.Uint("symtago_request_shed_total", obs.Labels{"route", rm.Route}, rm.Shed)
	}
	p.Family("symtago_request_timeouts_total", "counter", "Requests timed out or drained (503) by route.")
	for _, rm := range routes {
		p.Uint("symtago_request_timeouts_total", obs.Labels{"route", rm.Route}, rm.Timeouts)
	}
	bounds := make([]float64, len(latencyBucketBounds))
	for i, b := range latencyBucketBounds {
		bounds[i] = b.Seconds()
	}
	p.Family("symtago_request_duration_seconds", "histogram", "Request latency by route.")
	for _, rm := range routes {
		p.Histogram("symtago_request_duration_seconds", obs.Labels{"route", rm.Route},
			bounds, rm.Buckets, float64(rm.DurNanos)/1e9)
	}

	queued, executing, tenants := s.adm.snapshot()
	p.Family("symtago_admission_queued", "gauge", "Requests waiting for a worker slot.")
	p.Uint("symtago_admission_queued", nil, uint64(queued))
	p.Family("symtago_admission_executing", "gauge", "Requests holding a worker slot.")
	p.Uint("symtago_admission_executing", nil, uint64(executing))
	p.Family("symtago_admission_tenants", "gauge", "Tenants with a live token bucket.")
	p.Uint("symtago_admission_tenants", nil, uint64(tenants))
	p.Family("symtago_admission_max_clients", "gauge", "Worker slot capacity.")
	p.Uint("symtago_admission_max_clients", nil, uint64(s.cfg.MaxClients))
	p.Family("symtago_admission_queue_depth", "gauge", "Admission queue capacity.")
	p.Uint("symtago_admission_queue_depth", nil, uint64(s.cfg.QueueDepth))
	p.Family("symtago_draining", "gauge", "1 while the admission gate is closed for drain.")
	draining := uint64(0)
	if s.adm.draining.Load() {
		draining = 1
	}
	p.Uint("symtago_draining", nil, draining)

	tc := s.adm.snapshotTenants()
	p.Family("symtago_tenant_requests_total", "counter", "Application requests by tenant.")
	for _, t := range obs.SortedKeys(tc) {
		p.Uint("symtago_tenant_requests_total", obs.Labels{"tenant", t}, tc[t].requests)
	}
	p.Family("symtago_tenant_shed_total", "counter", "Requests shed by tenant.")
	for _, t := range obs.SortedKeys(tc) {
		p.Uint("symtago_tenant_shed_total", obs.Labels{"tenant", t}, tc[t].shed)
	}

	// Cache tiers: the shared analysis store's levels. A tiered store
	// reports its levels — with a remote third tier the second level is
	// itself tiered (disk over fleet), so its stats unnest one more
	// step; a flat store is its own l1.
	st := s.store.Stats()
	tier := func(name string, cs cache.Stats) {
		l := obs.Labels{"tier", name}
		p.Uint("symtago_cache_hits_total", l, cs.Hits)
		p.Uint("symtago_cache_misses_total", l, cs.Misses)
		p.Uint("symtago_cache_evictions_total", l, cs.Evictions)
		p.Uint("symtago_cache_corrupt_total", l, cs.Corrupt)
		p.Uint("symtago_cache_entries", l, uint64(cs.Entries))
		p.Uint("symtago_cache_bytes", l, uint64(cs.Bytes))
	}
	p.Family("symtago_cache_hits_total", "counter", "Cache hits by tier.")
	p.Family("symtago_cache_misses_total", "counter", "Cache misses by tier.")
	p.Family("symtago_cache_evictions_total", "counter", "Cache evictions by tier.")
	p.Family("symtago_cache_corrupt_total", "counter", "Cache records dropped as unreadable by tier.")
	p.Family("symtago_cache_entries", "gauge", "Resident cache entries by tier.")
	p.Family("symtago_cache_bytes", "gauge", "Resident cache bytes by tier (disk tier only).")
	switch {
	case st.L1 != nil && st.L2 != nil && st.L2.L1 != nil && st.L2.L2 != nil:
		tier("l1", *st.L1)
		tier("l2", *st.L2.L1)
		tier("remote", *st.L2.L2)
	case st.L1 != nil && st.L2 != nil:
		tier("l1", *st.L1)
		tier("l2", *st.L2)
	default:
		tier("l1", st)
	}
	if s.remote != nil {
		s.promRemote(p)
	}

	reg := s.reg.Stats()
	sessHits := reg.Sessions.Hits + reg.Sessions.ReportHits
	p.Family("symtago_sessions_active", "gauge", "Live what-if sessions.")
	p.Uint("symtago_sessions_active", nil, uint64(reg.Active))
	p.Family("symtago_sessions_tenants", "gauge", "Tenants holding sessions.")
	p.Uint("symtago_sessions_tenants", nil, uint64(reg.Tenants))
	p.Family("symtago_sessions_created_total", "counter", "Sessions created.")
	p.Uint("symtago_sessions_created_total", nil, reg.Created)
	p.Family("symtago_sessions_evicted_total", "counter", "Sessions evicted (TTL).")
	p.Uint("symtago_sessions_evicted_total", nil, reg.Evicted)
	p.Family("symtago_sessions_quota_evicted_total", "counter", "Sessions evicted by tenant quota.")
	p.Uint("symtago_sessions_quota_evicted_total", nil, reg.QuotaEvicted)
	p.Family("symtago_session_cache_hits_total", "counter", "Session memo hits (per-message plus whole-report).")
	p.Uint("symtago_session_cache_hits_total", nil, sessHits)
	p.Family("symtago_session_cache_misses_total", "counter", "Session memo misses.")
	p.Uint("symtago_session_cache_misses_total", nil, reg.Sessions.Misses)

	p.Family("symtago_shard_dispatch_total", "counter", "Shard attempts dispatched to workers (coordinator side).")
	p.Uint("symtago_shard_dispatch_total", nil, s.shardObs.dispatched.Load())
	p.Family("symtago_shard_done_total", "counter", "Shards completed and folded (coordinator side).")
	p.Uint("symtago_shard_done_total", nil, s.shardObs.done.Load())
	p.Family("symtago_shard_failed_total", "counter", "Shard attempts failed (coordinator side).")
	p.Uint("symtago_shard_failed_total", nil, s.shardObs.failed.Load())
	p.Family("symtago_shard_retries_total", "counter", "Shard attempts beyond the first (coordinator side).")
	p.Uint("symtago_shard_retries_total", nil, s.shardObs.retries.Load())
	p.Family("symtago_shard_dropped_workers_total", "counter", "Workers retired after consecutive failures.")
	p.Uint("symtago_shard_dropped_workers_total", nil, s.shardObs.droppedWorkers.Load())
	p.Family("symtago_shard_latency_seconds_sum", "counter", "Summed latency of completed shards.")
	p.Value("symtago_shard_latency_seconds_sum", nil, float64(s.shardObs.latencyNS.Load())/1e9)
	p.Family("symtago_shard_wire_bytes_total", "counter", "Shard response bytes as they travelled (post-compression, coordinator side).")
	p.Uint("symtago_shard_wire_bytes_total", nil, s.shardObs.wireBytes.Load())
	p.Family("symtago_shard_inflight", "gauge", "Shards currently in flight across all workers (pipeline occupancy).")
	p.Value("symtago_shard_inflight", nil, float64(s.shardObs.inflight.Load()))
	p.Family("symtago_worker_shards_served_total", "counter", "Shards computed by this process's worker endpoint.")
	p.Uint("symtago_worker_shards_served_total", nil, s.worker.ShardsServed())
	p.Family("symtago_worker_rows_served_total", "counter", "Rows computed by this process's worker endpoint.")
	p.Uint("symtago_worker_rows_served_total", nil, s.worker.RowsServed())

	s.jobsMu.Lock()
	states := map[string]int{}
	for _, cj := range s.jobs {
		states[cj.stateNow()]++
	}
	s.jobsMu.Unlock()
	p.Family("symtago_campaign_jobs", "gauge", "Campaign jobs by state.")
	for _, state := range []string{"running", "done", "failed", "cancelled"} {
		p.Uint("symtago_campaign_jobs", obs.Labels{"state", state}, uint64(states[state]))
	}

	p.Family("symtago_traces_retained", "gauge", "Traces held for GET /v1/trace/{id}.")
	p.Uint("symtago_traces_retained", nil, uint64(s.collector.Len()))
	p.Family("symtago_flight_offered_total", "counter", "Operations offered to the flight recorder.")
	p.Uint("symtago_flight_offered_total", nil, s.flight.Offered())
}

// promRemote emits the fleet-tier client families: lookup outcomes,
// the write-behind pipeline, the circuit breaker's state and history,
// and the fetch-latency histogram.
func (s *Server) promRemote(p *obs.Prom) {
	rs := s.remote.RemoteStats()
	p.Family("symtago_remote_cache_gets_total", "counter", "Lookups reaching the remote tier.")
	p.Uint("symtago_remote_cache_gets_total", nil, rs.Gets)
	p.Family("symtago_remote_cache_errors_total", "counter", "Remote transport failures and unexpected statuses.")
	p.Uint("symtago_remote_cache_errors_total", nil, rs.Errors)
	p.Family("symtago_remote_cache_retries_total", "counter", "Remote fetch re-attempts after a failure.")
	p.Uint("symtago_remote_cache_retries_total", nil, rs.Retries)
	p.Family("symtago_remote_cache_degraded_total", "counter", "Lookups answered all-miss because the breaker was open.")
	p.Uint("symtago_remote_cache_degraded_total", nil, rs.Degraded)
	p.Family("symtago_remote_cache_collapsed_total", "counter", "Concurrent duplicate lookups folded into another flight's fetch.")
	p.Uint("symtago_remote_cache_collapsed_total", nil, rs.Collapsed)
	p.Family("symtago_remote_cache_puts_total", "counter", "Write-behind PUTs by outcome.")
	p.Uint("symtago_remote_cache_puts_total", obs.Labels{"outcome", "queued"}, rs.PutsQueued)
	p.Uint("symtago_remote_cache_puts_total", obs.Labels{"outcome", "sent"}, rs.PutsSent)
	p.Uint("symtago_remote_cache_puts_total", obs.Labels{"outcome", "dropped"}, rs.PutsDropped)
	p.Uint("symtago_remote_cache_puts_total", obs.Labels{"outcome", "error"}, rs.PutErrors)
	p.Family("symtago_remote_cache_put_queue_len", "gauge", "Current write-behind backlog.")
	p.Uint("symtago_remote_cache_put_queue_len", nil, uint64(rs.QueueLen))
	p.Family("symtago_remote_cache_breaker_state", "gauge", "Circuit breaker state (0 closed, 1 half-open, 2 open).")
	p.Uint("symtago_remote_cache_breaker_state", nil, uint64(rs.Breaker))
	p.Family("symtago_remote_cache_breaker_opens_total", "counter", "Closed-to-open breaker transitions.")
	p.Uint("symtago_remote_cache_breaker_opens_total", nil, rs.BreakerOpens)
	lb := cache.RemoteLatencyBounds()
	bounds := make([]float64, len(lb))
	for i, b := range lb {
		bounds[i] = b.Seconds()
	}
	p.Family("symtago_remote_cache_fetch_seconds", "histogram", "Remote fetch latency (one observation per served lookup).")
	p.Histogram("symtago_remote_cache_fetch_seconds", nil, bounds, rs.LatencyBuckets, float64(rs.LatencySumNS)/1e9)
}
