package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// newTestServer starts a service over httptest and returns the base
// URL.
func newTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := New(Config{Workers: 1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs.URL
}

// testSpec encodes a one-scenario corpus spec.
func testSpec(t *testing.T, seed int64) string {
	t.Helper()
	var b bytes.Buffer
	sp := scenario.Spec{Seed: seed, Count: 1}.WithDefaults()
	if err := sp.Encode(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// do issues a request and returns status and body.
func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestHealthz(t *testing.T) {
	_, base := newTestServer(t)
	status, body := do(t, "GET", base+"/v1/healthz", "")
	if status != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", status, body)
	}
}

func TestAnalyzeHappyPath(t *testing.T) {
	_, base := newTestServer(t)
	status, body := do(t, "POST", base+"/v1/analyze", testSpec(t, 5))
	if status != http.StatusOK {
		t.Fatalf("analyze: %d %s", status, body)
	}
	var sum AnalysisSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Buses) == 0 || sum.Iterations == 0 {
		t.Fatalf("empty summary: %+v", sum)
	}
	// A repeated upload is served from the shared store and must be
	// byte-identical.
	status2, body2 := do(t, "POST", base+"/v1/analyze", testSpec(t, 5))
	if status2 != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("repeated analyze differs: %d", status2)
	}
}

func TestAnalyzeMalformedSpec(t *testing.T) {
	_, base := newTestServer(t)
	for name, body := range map[string]string{
		"unknown-key": "coont = 3\n",
		"bad-value":   "count = many\n",
		"bad-range":   "min_messages = 2\nmax_messages = 1\n",
	} {
		status, data := do(t, "POST", base+"/v1/analyze", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d %s, want 400", name, status, data)
		}
		var e errorBody
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", name, data)
		}
	}
	if status, _ := do(t, "POST", base+"/v1/analyze?index=-1", testSpec(t, 5)); status != http.StatusBadRequest {
		t.Errorf("negative index: status %d, want 400", status)
	}
	if status, _ := do(t, "POST", base+"/v1/analyze?index=x", testSpec(t, 5)); status != http.StatusBadRequest {
		t.Errorf("non-numeric index: status %d, want 400", status)
	}
	// A huge index costs one scenario plan, not a corpus (O(1) via
	// scenario.GenerateOne) — the request must simply succeed.
	if status, _ := do(t, "POST", base+"/v1/analyze?index=2000000000", testSpec(t, 5)); status != http.StatusOK {
		t.Errorf("large index: status %d, want 200", status)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, base := newTestServer(t)
	status, body := do(t, "POST", base+"/v1/sessions", testSpec(t, 5))
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	var sc SessionCreated
	if err := json.Unmarshal(body, &sc); err != nil {
		t.Fatal(err)
	}
	if sc.ID == "" || sc.TTLSeconds <= 0 {
		t.Fatalf("create response: %+v", sc)
	}

	// Base analysis must match the one-shot endpoint's summary.
	status, sessBody := do(t, "GET", base+"/v1/sessions/"+sc.ID+"/analysis", "")
	if status != http.StatusOK {
		t.Fatalf("session analysis: %d %s", status, sessBody)
	}
	status, oneShot := do(t, "POST", base+"/v1/analyze", testSpec(t, 5))
	if status != http.StatusOK || !bytes.Equal(sessBody, oneShot) {
		t.Fatalf("session analysis differs from one-shot analyze")
	}

	// Apply a revision; the analysis in the response reflects it.
	status, chBody := do(t, "POST", base+"/v1/sessions/"+sc.ID+"/changes",
		"set-event-jitter bus0/M001_25ms 200us\n")
	if status != http.StatusOK {
		t.Fatalf("changes: %d %s", status, chBody)
	}
	var ch ChangesApplied
	if err := json.Unmarshal(chBody, &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Applied != 1 || len(ch.Changes) != 1 || ch.Analysis == nil {
		t.Fatalf("changes response: %+v", ch)
	}

	// Session stats report the incremental reuse.
	status, infoBody := do(t, "GET", base+"/v1/sessions/"+sc.ID, "")
	if status != http.StatusOK {
		t.Fatalf("info: %d %s", status, infoBody)
	}
	var info SessionInfo
	if err := json.Unmarshal(infoBody, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != sc.ID || info.Misses == 0 {
		t.Fatalf("info response: %+v", info)
	}

	// Close and observe 404s afterwards.
	if status, _ := do(t, "DELETE", base+"/v1/sessions/"+sc.ID, ""); status != http.StatusNoContent {
		t.Fatalf("delete: %d", status)
	}
	for _, probe := range [][2]string{
		{"GET", "/v1/sessions/" + sc.ID},
		{"GET", "/v1/sessions/" + sc.ID + "/analysis"},
		{"POST", "/v1/sessions/" + sc.ID + "/changes"},
		{"DELETE", "/v1/sessions/" + sc.ID},
	} {
		body := ""
		if probe[0] == "POST" {
			body = "set-event-jitter bus0/M001_25ms 1us\n"
		}
		if status, _ := do(t, probe[0], base+probe[1], body); status != http.StatusNotFound {
			t.Errorf("%s %s after delete: %d, want 404", probe[0], probe[1], status)
		}
	}
}

func TestSessionChangeErrors(t *testing.T) {
	_, base := newTestServer(t)
	_, body := do(t, "POST", base+"/v1/sessions", testSpec(t, 5))
	var sc SessionCreated
	if err := json.Unmarshal(body, &sc); err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"bad-syntax":      {"twiddle bus0/M001_25ms 1ms\n", http.StatusBadRequest},
		"empty":           {"# nothing\n", http.StatusBadRequest},
		"unknown-element": {"set-event-jitter bus0/NOPE 1ms\n", http.StatusBadRequest},
		"unknown-bus":     {"set-frame-dlc busX/M001_25ms 4\n", http.StatusBadRequest},
	} {
		status, data := do(t, "POST", base+"/v1/sessions/"+sc.ID+"/changes", tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d %s, want %d", name, status, data, tc.want)
		}
	}
	// Unknown session beats script parsing concerns.
	status, _ := do(t, "POST", base+"/v1/sessions/s999/changes", "set-event-jitter bus0/M001_25ms 1ms\n")
	if status != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", status)
	}
}

// TestConcurrentSessionMutation posts distinct revisions to one
// session from many goroutines; per-session locking must serialize
// them so the final state equals a serial application of the same
// edits (in any order — the edits commute).
func TestConcurrentSessionMutation(t *testing.T) {
	_, base := newTestServer(t)
	_, body := do(t, "POST", base+"/v1/sessions", testSpec(t, 5))
	var sc SessionCreated
	if err := json.Unmarshal(body, &sc); err != nil {
		t.Fatal(err)
	}

	// Distinct fixed-value jitter edits on distinct messages commute.
	edits := []string{
		"set-event-jitter bus0/M001_25ms 110us\n",
		"set-event-jitter bus0/M003_100ms 120us\n",
		"set-event-jitter bus0/M005_25ms 130us\n",
		"set-event-jitter bus0/M007_500ms 140us\n",
		"set-event-jitter bus0/M009_20ms 150us\n",
		"set-event-jitter bus0/M011_20ms 160us\n",
	}
	var wg sync.WaitGroup
	errs := make([]error, len(edits))
	for i, e := range edits {
		wg.Add(1)
		go func(i int, e string) {
			defer wg.Done()
			status, data := do(t, "POST", base+"/v1/sessions/"+sc.ID+"/changes", e)
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("edit %d: %d %s", i, status, data)
			}
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	status, got := do(t, "GET", base+"/v1/sessions/"+sc.ID+"/analysis", "")
	if status != http.StatusOK {
		t.Fatalf("final analysis: %d %s", status, got)
	}

	// Serial reference: a fresh session, all edits in one script.
	_, body = do(t, "POST", base+"/v1/sessions", testSpec(t, 5))
	var ref SessionCreated
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}
	status, chBody := do(t, "POST", base+"/v1/sessions/"+ref.ID+"/changes", strings.Join(edits, ""))
	if status != http.StatusOK {
		t.Fatalf("serial edits: %d %s", status, chBody)
	}
	var ch ChangesApplied
	if err := json.Unmarshal(chBody, &ch); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ch.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimSpace(got)) != string(want) {
		t.Fatalf("concurrent final state differs from serial application:\n%s\n%s", got, want)
	}
}

func TestSimulate(t *testing.T) {
	_, base := newTestServer(t)
	status, body := do(t, "POST", base+"/v1/simulate?seeds=1&duration=50ms", testSpec(t, 5))
	if status != http.StatusOK {
		t.Fatalf("simulate: %d %s", status, body)
	}
	var sim SimulateResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Runs != 1 || sim.Frames == 0 {
		t.Fatalf("simulate response: %+v", sim)
	}
	if sim.Violations != 0 {
		t.Fatalf("simulate found %d bound violations", sim.Violations)
	}
	for name, q := range map[string]string{
		"bad-seeds":    "?seeds=0",
		"bad-duration": "?duration=soon",
	} {
		if status, _ := do(t, "POST", base+"/v1/simulate"+q, testSpec(t, 5)); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
}

func TestCampaignLifecycle(t *testing.T) {
	_, base := newTestServer(t)
	spec := "seed = 3\ncount = 6\n"
	status, body := do(t, "POST", base+"/v1/campaigns?seeds=1&duration=50ms", spec)
	if status != http.StatusAccepted {
		t.Fatalf("campaign create: %d %s", status, body)
	}
	var started CampaignStarted
	if err := json.Unmarshal(body, &started); err != nil {
		t.Fatal(err)
	}
	if started.Scenarios != 6 {
		t.Fatalf("campaign size %d, want 6", started.Scenarios)
	}

	var st CampaignStatus
	deadline := time.Now().Add(2 * time.Minute)
	for {
		status, body = do(t, "GET", base+"/v1/campaigns/"+started.ID, "")
		if status != http.StatusOK {
			t.Fatalf("status: %d %s", status, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != "done" || st.Summary == nil || st.Done != 6 {
		t.Fatalf("final status: %+v", st)
	}
	if st.Summary.Violations != 0 {
		t.Fatalf("campaign violations: %+v", st.Summary)
	}

	status, rep := do(t, "GET", base+"/v1/campaigns/"+started.ID+"/report", "")
	if status != http.StatusOK || !strings.Contains(string(rep), "Campaign — 6 scenarios") {
		t.Fatalf("report: %d %s", status, rep[:min(len(rep), 200)])
	}

	// Resume of a done job is a no-op; cancel echoes the real state.
	if status, _ = do(t, "POST", base+"/v1/campaigns/"+started.ID+"/resume", ""); status != http.StatusAccepted {
		t.Errorf("resume done: %d", status)
	}
	status, body = do(t, "POST", base+"/v1/campaigns/"+started.ID+"/cancel", "")
	if status != http.StatusAccepted || !strings.Contains(string(body), `"done"`) {
		t.Errorf("cancel of done job: %d %s, want state done", status, body)
	}

	// A finished job can be dropped; afterwards it is unknown.
	if status, _ = do(t, "DELETE", base+"/v1/campaigns/"+started.ID, ""); status != http.StatusNoContent {
		t.Errorf("delete done job: %d, want 204", status)
	}
	if status, _ = do(t, "GET", base+"/v1/campaigns/"+started.ID, ""); status != http.StatusNotFound {
		t.Errorf("status after delete: %d, want 404", status)
	}
	for _, p := range []string{"", "/report", "/cancel", "/resume"} {
		method := "GET"
		if strings.HasSuffix(p, "cancel") || strings.HasSuffix(p, "resume") {
			method = "POST"
		}
		if status, _ := do(t, method, base+"/v1/campaigns/c999"+p, ""); status != http.StatusNotFound {
			t.Errorf("unknown campaign %s%s: %d, want 404", method, p, status)
		}
	}
}

func TestCampaignCancelResume(t *testing.T) {
	_, base := newTestServer(t)
	// A larger corpus so cancellation usually lands mid-run; the test
	// is correct for any interleaving.
	spec := "seed = 4\ncount = 24\n"
	status, body := do(t, "POST", base+"/v1/campaigns?seeds=1&duration=50ms", spec)
	if status != http.StatusAccepted {
		t.Fatalf("create: %d %s", status, body)
	}
	var started CampaignStarted
	if err := json.Unmarshal(body, &started); err != nil {
		t.Fatal(err)
	}
	if status, _ := do(t, "POST", base+"/v1/campaigns/"+started.ID+"/cancel", ""); status != http.StatusAccepted {
		t.Fatalf("cancel: %d", status)
	}
	// Wait out the transition, then resume until done.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st CampaignStatus
		_, body = do(t, "GET", base+"/v1/campaigns/"+started.ID, "")
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			if st.Done != st.Total {
				t.Fatalf("done with %d/%d", st.Done, st.Total)
			}
			break
		}
		if st.State == "cancelled" {
			do(t, "POST", base+"/v1/campaigns/"+started.ID+"/resume", "")
		}
		if st.State == "failed" {
			t.Fatalf("campaign failed: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, base := newTestServer(t)
	do(t, "POST", base+"/v1/analyze", testSpec(t, 5))
	do(t, "POST", base+"/v1/analyze", "garbage\n")
	status, body := do(t, "GET", base+"/v1/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d %s", status, body)
	}
	var m MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	var analyze *RouteMetrics
	for i := range m.Requests {
		if m.Requests[i].Route == "POST /v1/analyze" {
			analyze = &m.Requests[i]
		}
	}
	if analyze == nil || analyze.Count != 2 || analyze.Errors != 1 {
		t.Fatalf("analyze route metrics: %+v", m.Requests)
	}
	if m.WhatIf.StoreMisses == 0 {
		t.Fatalf("whatif metrics: %+v", m.WhatIf)
	}
}
