package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// mustServer builds a Server, failing the test on a config error.
func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv
}

// newTestServer starts a service over httptest and returns the base
// URL.
func newTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := mustServer(t, Config{Workers: 1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs.URL
}

// testSpec encodes a one-scenario corpus spec.
func testSpec(t *testing.T, seed int64) string {
	t.Helper()
	var b bytes.Buffer
	sp := scenario.Spec{Seed: seed, Count: 1}.WithDefaults()
	if err := sp.Encode(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// do issues a request and returns status and body.
func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestHealthz(t *testing.T) {
	_, base := newTestServer(t)
	status, body := do(t, "GET", base+"/v1/healthz", "")
	if status != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", status, body)
	}
}

func TestAnalyzeHappyPath(t *testing.T) {
	_, base := newTestServer(t)
	status, body := do(t, "POST", base+"/v1/analyze", testSpec(t, 5))
	if status != http.StatusOK {
		t.Fatalf("analyze: %d %s", status, body)
	}
	var sum AnalysisSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Buses) == 0 || sum.Iterations == 0 {
		t.Fatalf("empty summary: %+v", sum)
	}
	// A repeated upload is served from the shared store and must be
	// byte-identical.
	status2, body2 := do(t, "POST", base+"/v1/analyze", testSpec(t, 5))
	if status2 != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("repeated analyze differs: %d", status2)
	}
}

func TestAnalyzeMalformedSpec(t *testing.T) {
	_, base := newTestServer(t)
	for name, body := range map[string]string{
		"unknown-key": "coont = 3\n",
		"bad-value":   "count = many\n",
		"bad-range":   "min_messages = 2\nmax_messages = 1\n",
	} {
		status, data := do(t, "POST", base+"/v1/analyze", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d %s, want 400", name, status, data)
		}
		var e errorBody
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", name, data)
		}
	}
	if status, _ := do(t, "POST", base+"/v1/analyze?index=-1", testSpec(t, 5)); status != http.StatusBadRequest {
		t.Errorf("negative index: status %d, want 400", status)
	}
	if status, _ := do(t, "POST", base+"/v1/analyze?index=x", testSpec(t, 5)); status != http.StatusBadRequest {
		t.Errorf("non-numeric index: status %d, want 400", status)
	}
	// A huge index costs one scenario plan, not a corpus (O(1) via
	// scenario.GenerateOne) — the request must simply succeed.
	if status, _ := do(t, "POST", base+"/v1/analyze?index=2000000000", testSpec(t, 5)); status != http.StatusOK {
		t.Errorf("large index: status %d, want 200", status)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, base := newTestServer(t)
	status, body := do(t, "POST", base+"/v1/sessions", testSpec(t, 5))
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, body)
	}
	var sc SessionCreated
	if err := json.Unmarshal(body, &sc); err != nil {
		t.Fatal(err)
	}
	if sc.ID == "" || sc.TTLSeconds <= 0 {
		t.Fatalf("create response: %+v", sc)
	}

	// Base analysis must match the one-shot endpoint's summary.
	status, sessBody := do(t, "GET", base+"/v1/sessions/"+sc.ID+"/analysis", "")
	if status != http.StatusOK {
		t.Fatalf("session analysis: %d %s", status, sessBody)
	}
	status, oneShot := do(t, "POST", base+"/v1/analyze", testSpec(t, 5))
	if status != http.StatusOK || !bytes.Equal(sessBody, oneShot) {
		t.Fatalf("session analysis differs from one-shot analyze")
	}

	// Apply a revision; the analysis in the response reflects it.
	status, chBody := do(t, "POST", base+"/v1/sessions/"+sc.ID+"/changes",
		"set-event-jitter bus0/M001_25ms 200us\n")
	if status != http.StatusOK {
		t.Fatalf("changes: %d %s", status, chBody)
	}
	var ch ChangesApplied
	if err := json.Unmarshal(chBody, &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Applied != 1 || len(ch.Changes) != 1 || ch.Analysis == nil {
		t.Fatalf("changes response: %+v", ch)
	}

	// Session stats report the incremental reuse.
	status, infoBody := do(t, "GET", base+"/v1/sessions/"+sc.ID, "")
	if status != http.StatusOK {
		t.Fatalf("info: %d %s", status, infoBody)
	}
	var info SessionInfo
	if err := json.Unmarshal(infoBody, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != sc.ID || info.Misses == 0 {
		t.Fatalf("info response: %+v", info)
	}

	// Close and observe 404s afterwards.
	if status, _ := do(t, "DELETE", base+"/v1/sessions/"+sc.ID, ""); status != http.StatusNoContent {
		t.Fatalf("delete: %d", status)
	}
	for _, probe := range [][2]string{
		{"GET", "/v1/sessions/" + sc.ID},
		{"GET", "/v1/sessions/" + sc.ID + "/analysis"},
		{"POST", "/v1/sessions/" + sc.ID + "/changes"},
		{"DELETE", "/v1/sessions/" + sc.ID},
	} {
		body := ""
		if probe[0] == "POST" {
			body = "set-event-jitter bus0/M001_25ms 1us\n"
		}
		if status, _ := do(t, probe[0], base+probe[1], body); status != http.StatusNotFound {
			t.Errorf("%s %s after delete: %d, want 404", probe[0], probe[1], status)
		}
	}
}

func TestSessionChangeErrors(t *testing.T) {
	_, base := newTestServer(t)
	_, body := do(t, "POST", base+"/v1/sessions", testSpec(t, 5))
	var sc SessionCreated
	if err := json.Unmarshal(body, &sc); err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"bad-syntax":      {"twiddle bus0/M001_25ms 1ms\n", http.StatusBadRequest},
		"empty":           {"# nothing\n", http.StatusBadRequest},
		"unknown-element": {"set-event-jitter bus0/NOPE 1ms\n", http.StatusBadRequest},
		"unknown-bus":     {"set-frame-dlc busX/M001_25ms 4\n", http.StatusBadRequest},
	} {
		status, data := do(t, "POST", base+"/v1/sessions/"+sc.ID+"/changes", tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d %s, want %d", name, status, data, tc.want)
		}
	}
	// Unknown session beats script parsing concerns.
	status, _ := do(t, "POST", base+"/v1/sessions/s999/changes", "set-event-jitter bus0/M001_25ms 1ms\n")
	if status != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", status)
	}
}

// TestConcurrentSessionMutation posts distinct revisions to one
// session from many goroutines; per-session locking must serialize
// them so the final state equals a serial application of the same
// edits (in any order — the edits commute).
func TestConcurrentSessionMutation(t *testing.T) {
	_, base := newTestServer(t)
	_, body := do(t, "POST", base+"/v1/sessions", testSpec(t, 5))
	var sc SessionCreated
	if err := json.Unmarshal(body, &sc); err != nil {
		t.Fatal(err)
	}

	// Distinct fixed-value jitter edits on distinct messages commute.
	edits := []string{
		"set-event-jitter bus0/M001_25ms 110us\n",
		"set-event-jitter bus0/M003_100ms 120us\n",
		"set-event-jitter bus0/M005_25ms 130us\n",
		"set-event-jitter bus0/M007_500ms 140us\n",
		"set-event-jitter bus0/M009_20ms 150us\n",
		"set-event-jitter bus0/M011_20ms 160us\n",
	}
	var wg sync.WaitGroup
	errs := make([]error, len(edits))
	for i, e := range edits {
		wg.Add(1)
		go func(i int, e string) {
			defer wg.Done()
			status, data := do(t, "POST", base+"/v1/sessions/"+sc.ID+"/changes", e)
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("edit %d: %d %s", i, status, data)
			}
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	status, got := do(t, "GET", base+"/v1/sessions/"+sc.ID+"/analysis", "")
	if status != http.StatusOK {
		t.Fatalf("final analysis: %d %s", status, got)
	}

	// Serial reference: a fresh session, all edits in one script.
	_, body = do(t, "POST", base+"/v1/sessions", testSpec(t, 5))
	var ref SessionCreated
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}
	status, chBody := do(t, "POST", base+"/v1/sessions/"+ref.ID+"/changes", strings.Join(edits, ""))
	if status != http.StatusOK {
		t.Fatalf("serial edits: %d %s", status, chBody)
	}
	var ch ChangesApplied
	if err := json.Unmarshal(chBody, &ch); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ch.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimSpace(got)) != string(want) {
		t.Fatalf("concurrent final state differs from serial application:\n%s\n%s", got, want)
	}
}

func TestSimulate(t *testing.T) {
	_, base := newTestServer(t)
	status, body := do(t, "POST", base+"/v1/simulate?seeds=1&duration=50ms", testSpec(t, 5))
	if status != http.StatusOK {
		t.Fatalf("simulate: %d %s", status, body)
	}
	var sim SimulateResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Runs != 1 || sim.Frames == 0 {
		t.Fatalf("simulate response: %+v", sim)
	}
	if sim.Violations != 0 {
		t.Fatalf("simulate found %d bound violations", sim.Violations)
	}
	for name, q := range map[string]string{
		"bad-seeds":    "?seeds=0",
		"bad-duration": "?duration=soon",
	} {
		if status, _ := do(t, "POST", base+"/v1/simulate"+q, testSpec(t, 5)); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
}

func TestCampaignLifecycle(t *testing.T) {
	_, base := newTestServer(t)
	spec := "seed = 3\ncount = 6\n"
	status, body := do(t, "POST", base+"/v1/campaigns?seeds=1&duration=50ms", spec)
	if status != http.StatusAccepted {
		t.Fatalf("campaign create: %d %s", status, body)
	}
	var started CampaignStarted
	if err := json.Unmarshal(body, &started); err != nil {
		t.Fatal(err)
	}
	if started.Scenarios != 6 {
		t.Fatalf("campaign size %d, want 6", started.Scenarios)
	}

	var st CampaignStatus
	deadline := time.Now().Add(2 * time.Minute)
	for {
		status, body = do(t, "GET", base+"/v1/campaigns/"+started.ID, "")
		if status != http.StatusOK {
			t.Fatalf("status: %d %s", status, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != "done" || st.Summary == nil || st.Done != 6 {
		t.Fatalf("final status: %+v", st)
	}
	if st.Summary.Violations != 0 {
		t.Fatalf("campaign violations: %+v", st.Summary)
	}

	status, rep := do(t, "GET", base+"/v1/campaigns/"+started.ID+"/report", "")
	if status != http.StatusOK || !strings.Contains(string(rep), "Campaign — 6 scenarios") {
		t.Fatalf("report: %d %s", status, rep[:min(len(rep), 200)])
	}

	// Resume of a done job is a no-op; cancel echoes the real state.
	if status, _ = do(t, "POST", base+"/v1/campaigns/"+started.ID+"/resume", ""); status != http.StatusAccepted {
		t.Errorf("resume done: %d", status)
	}
	status, body = do(t, "POST", base+"/v1/campaigns/"+started.ID+"/cancel", "")
	if status != http.StatusAccepted || !strings.Contains(string(body), `"done"`) {
		t.Errorf("cancel of done job: %d %s, want state done", status, body)
	}

	// A finished job can be dropped; afterwards it is unknown.
	if status, _ = do(t, "DELETE", base+"/v1/campaigns/"+started.ID, ""); status != http.StatusNoContent {
		t.Errorf("delete done job: %d, want 204", status)
	}
	if status, _ = do(t, "GET", base+"/v1/campaigns/"+started.ID, ""); status != http.StatusNotFound {
		t.Errorf("status after delete: %d, want 404", status)
	}
	for _, p := range []string{"", "/report", "/cancel", "/resume"} {
		method := "GET"
		if strings.HasSuffix(p, "cancel") || strings.HasSuffix(p, "resume") {
			method = "POST"
		}
		if status, _ := do(t, method, base+"/v1/campaigns/c999"+p, ""); status != http.StatusNotFound {
			t.Errorf("unknown campaign %s%s: %d, want 404", method, p, status)
		}
	}
}

func TestCampaignCancelResume(t *testing.T) {
	_, base := newTestServer(t)
	// A larger corpus so cancellation usually lands mid-run; the test
	// is correct for any interleaving.
	spec := "seed = 4\ncount = 24\n"
	status, body := do(t, "POST", base+"/v1/campaigns?seeds=1&duration=50ms", spec)
	if status != http.StatusAccepted {
		t.Fatalf("create: %d %s", status, body)
	}
	var started CampaignStarted
	if err := json.Unmarshal(body, &started); err != nil {
		t.Fatal(err)
	}
	if status, _ := do(t, "POST", base+"/v1/campaigns/"+started.ID+"/cancel", ""); status != http.StatusAccepted {
		t.Fatalf("cancel: %d", status)
	}
	// Wait out the transition, then resume until done.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st CampaignStatus
		_, body = do(t, "GET", base+"/v1/campaigns/"+started.ID, "")
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			if st.Done != st.Total {
				t.Fatalf("done with %d/%d", st.Done, st.Total)
			}
			break
		}
		if st.State == "cancelled" {
			do(t, "POST", base+"/v1/campaigns/"+started.ID+"/resume", "")
		}
		if st.State == "failed" {
			t.Fatalf("campaign failed: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, base := newTestServer(t)
	do(t, "POST", base+"/v1/analyze", testSpec(t, 5))
	do(t, "POST", base+"/v1/analyze", "garbage\n")
	status, body := do(t, "GET", base+"/v1/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d %s", status, body)
	}
	var m MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	var analyze *RouteMetrics
	for i := range m.Requests {
		if m.Requests[i].Route == "POST /v1/analyze" {
			analyze = &m.Requests[i]
		}
	}
	if analyze == nil || analyze.Count != 2 || analyze.Errors != 1 {
		t.Fatalf("analyze route metrics: %+v", m.Requests)
	}
	if m.WhatIf.StoreMisses == 0 {
		t.Fatalf("whatif metrics: %+v", m.WhatIf)
	}
}

// getCode decodes the uniform error body.
func getCode(t *testing.T, data []byte) string {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body %q: %v", data, err)
	}
	if e.Error == "" || e.Code == "" {
		t.Fatalf("incomplete error body %q", data)
	}
	return e.Code
}

// TestErrorBodiesAreStructured checks that every non-2xx path — the
// handlers' own errors and the mux's 404/405 — answers with the
// uniform {"error", "code"} JSON body.
func TestErrorBodiesAreStructured(t *testing.T) {
	_, base := newTestServer(t)

	req, err := http.NewRequest("POST", base+"/v1/analyze", strings.NewReader("garbage\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest || getCode(t, data) != CodeBadRequest {
		t.Fatalf("bad spec: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("bad spec content type %q", ct)
	}

	for name, tc := range map[string]struct {
		method, path, body string
		status             int
		code               string
	}{
		"unknown-session":  {"GET", "/v1/sessions/s999", "", http.StatusNotFound, CodeNotFound},
		"unknown-campaign": {"GET", "/v1/campaigns/c999", "", http.StatusNotFound, CodeNotFound},
		"mux-404":          {"GET", "/v1/nothing-here", "", http.StatusNotFound, CodeNotFound},
		"mux-405":          {"DELETE", "/v1/analyze", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status || getCode(t, data) != tc.code {
			t.Errorf("%s: %d %s, want %d/%s", name, resp.StatusCode, data, tc.status, tc.code)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q, want application/json", name, ct)
		}
		if name == "mux-405" && resp.Header.Get("Allow") == "" {
			t.Error("mux-405: Allow header lost in the JSON rewrite")
		}
	}
}

// TestPayloadTooLarge uploads past the body cap and expects the
// structured 413.
func TestPayloadTooLarge(t *testing.T) {
	srv := mustServer(t, Config{Workers: 1, MaxBodyBytes: 64})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	status, data := do(t, "POST", hs.URL+"/v1/analyze", strings.Repeat("x", 1024))
	if status != http.StatusRequestEntityTooLarge || getCode(t, data) != CodePayloadTooLarge {
		t.Fatalf("oversized body: %d %s", status, data)
	}
}

// TestRateLimitSheds exhausts one tenant's bucket and checks the 429
// carries Retry-After while another tenant is still served.
func TestRateLimitSheds(t *testing.T) {
	srv := mustServer(t, Config{Workers: 1, TenantRate: 0.5, TenantBurst: 1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	get := func(tenant string) (*http.Response, []byte) {
		req, err := http.NewRequest("POST", hs.URL+"/v1/analyze", strings.NewReader(testSpec(t, 5)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}
	if resp, data := get("a"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp.StatusCode, data)
	}
	resp, data := get("a")
	if resp.StatusCode != http.StatusTooManyRequests || getCode(t, data) != CodeRateLimited {
		t.Fatalf("second request: %d %s, want 429/rate_limited", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp, data := get("b"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: %d %s", resp.StatusCode, data)
	}
}

// TestQueueWaitTimeout fills the single worker slot so the next
// request times out queued, yielding the structured 503.
func TestQueueWaitTimeout(t *testing.T) {
	srv := mustServer(t, Config{Workers: 1, MaxClients: 1, RequestTimeout: 30 * time.Millisecond})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	srv.adm.slots <- struct{}{} // occupy the only slot
	defer func() { <-srv.adm.slots }()
	status, data := do(t, "POST", hs.URL+"/v1/analyze", testSpec(t, 5))
	if status != http.StatusServiceUnavailable || getCode(t, data) != CodeTimeout {
		t.Fatalf("queued past deadline: %d %s, want 503/timeout", status, data)
	}
}

// TestQueueFullSheds fills the slot and the queue; the overflow
// request is shed with 429/queue_full + Retry-After.
func TestQueueFullSheds(t *testing.T) {
	srv := mustServer(t, Config{Workers: 1, MaxClients: 1, QueueDepth: 1, RequestTimeout: time.Second})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	srv.adm.slots <- struct{}{} // occupy the only slot
	defer func() { <-srv.adm.slots }()
	queued := make(chan struct{})
	go func() {
		defer close(queued)
		do(t, "POST", hs.URL+"/v1/analyze", testSpec(t, 5)) // fills the queue, times out
	}()
	// Wait until the first request occupies the queue.
	deadline := time.Now().Add(time.Second)
	for {
		q, _, _ := srv.adm.snapshot()
		if q >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued request never showed up")
		}
		time.Sleep(time.Millisecond)
	}
	req, err := http.NewRequest("POST", hs.URL+"/v1/analyze", strings.NewReader(testSpec(t, 5)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || getCode(t, data) != CodeQueueFull {
		t.Fatalf("overflow request: %d %s, want 429/queue_full", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full 429 without Retry-After")
	}
	<-queued
}

// TestSessionQuotaOverHTTP pins a tenant at its quota: an idle session
// is evicted to make room, but with every session acquired the create
// is refused with 429/session_quota.
func TestSessionQuotaOverHTTP(t *testing.T) {
	srv := mustServer(t, Config{Workers: 1, TenantQuota: 1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	create := func() (int, []byte) {
		req, err := http.NewRequest("POST", hs.URL+"/v1/sessions", strings.NewReader(testSpec(t, 5)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(TenantHeader, "quota-tenant")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, data
	}
	status, body := create()
	if status != http.StatusCreated {
		t.Fatalf("first create: %d %s", status, body)
	}
	var first SessionCreated
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	// Second create evicts the idle first session.
	if status, body = create(); status != http.StatusCreated {
		t.Fatalf("create at quota with idle session: %d %s", status, body)
	}
	var second SessionCreated
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if status, _ := do(t, "GET", hs.URL+"/v1/sessions/"+first.ID, ""); status != http.StatusNotFound {
		t.Fatalf("evicted session still answers: %d", status)
	}

	// Acquire the surviving session; now the quota cannot evict.
	_, release, ok := srv.reg.Acquire(second.ID)
	if !ok {
		t.Fatalf("second session %s vanished", second.ID)
	}
	defer release()
	status, data := create()
	if status != http.StatusTooManyRequests || getCode(t, data) != CodeSessionQuota {
		t.Fatalf("create with quota busy: %d %s, want 429/session_quota", status, data)
	}
}

// TestCorpusCap rejects a campaign whose corpus exceeds the configured
// scenario cap before any generation work happens.
func TestCorpusCap(t *testing.T) {
	srv := mustServer(t, Config{Workers: 1, MaxCampaignScenarios: 4})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	status, data := do(t, "POST", hs.URL+"/v1/campaigns?seeds=1&duration=50ms", "seed = 3\ncount = 6\n")
	if status != http.StatusBadRequest || getCode(t, data) != CodeCorpusTooLarge {
		t.Fatalf("oversized corpus: %d %s, want 400/corpus_too_large", status, data)
	}
	// An uploaded spec with no count inherits the generator default of
	// 500 — the cap must see through that too.
	status, data = do(t, "POST", hs.URL+"/v1/campaigns?seeds=1&duration=50ms", "seed = 3\n")
	if status != http.StatusBadRequest || getCode(t, data) != CodeCorpusTooLarge {
		t.Fatalf("default-count corpus: %d %s, want 400/corpus_too_large", status, data)
	}
}

// TestDrainingGate flips the drain gate: application routes answer the
// structured 503 while operational routes stay up.
func TestDrainingGate(t *testing.T) {
	srv, base := newTestServer(t)
	srv.StartDraining()
	status, data := do(t, "POST", base+"/v1/analyze", testSpec(t, 5))
	if status != http.StatusServiceUnavailable || getCode(t, data) != CodeDraining {
		t.Fatalf("drained app route: %d %s, want 503/draining", status, data)
	}
	if status, _ := do(t, "GET", base+"/v1/healthz", ""); status != http.StatusOK {
		t.Fatalf("drained healthz: %d, want 200", status)
	}
	status, body := do(t, "GET", base+"/v1/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("drained metrics: %d", status)
	}
	var m MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Admission.Draining {
		t.Fatal("metrics do not report draining")
	}
}

// TestMetricsAdmissionCounters checks shed attempts surface in the
// per-route counters.
func TestMetricsAdmissionCounters(t *testing.T) {
	srv := mustServer(t, Config{Workers: 1, TenantRate: 0.5, TenantBurst: 1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	do(t, "POST", hs.URL+"/v1/analyze", testSpec(t, 5))
	do(t, "POST", hs.URL+"/v1/analyze", testSpec(t, 5)) // shed: bucket empty
	status, body := do(t, "GET", hs.URL+"/v1/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	var m MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	var analyze *RouteMetrics
	for i := range m.Requests {
		if m.Requests[i].Route == "POST /v1/analyze" {
			analyze = &m.Requests[i]
		}
	}
	if analyze == nil || analyze.Shed != 1 {
		t.Fatalf("analyze shed counter: %+v", m.Requests)
	}
	if m.Admission.MaxClients == 0 || m.Admission.QueueDepth == 0 {
		t.Fatalf("admission config missing from metrics: %+v", m.Admission)
	}
}
