package service

import (
	"errors"
	"io"
	"net/http"
)

// The machine-readable error codes of the uniform JSON error body.
// Every non-2xx response carries one, so clients can branch without
// parsing prose. 429 and 503 responses are always deliberate: a 429
// means shed load (honour Retry-After), a 503 carries CodeTimeout or
// CodeDraining — the service never returns a 5xx it did not choose.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodePayloadTooLarge  = "payload_too_large"
	CodeCorpusTooLarge   = "corpus_too_large"
	CodeAnalysisFailed   = "analysis_failed"
	CodeConflict         = "conflict"
	CodeRateLimited      = "rate_limited"
	CodeQueueFull        = "queue_full"
	CodeSessionQuota     = "session_quota"
	CodeTimeout          = "timeout"
	CodeDraining         = "draining"
	CodeInternal         = "internal"
)

// codeForStatus maps a bare HTTP status (as produced by the mux's own
// 404/405 handlers and the plain-text errors of the embedded shard
// worker) to its error code.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusUnprocessableEntity:
		return CodeAnalysisFailed
	default:
		return CodeInternal
	}
}

// jsonFallback wraps a handler so every error response that escaped
// the handlers' own JSON paths — the mux's plain-text 404/405s — is
// rewritten into the uniform JSON error body. Responses that already
// carry a JSON content type pass through untouched.
func jsonFallback(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&fallbackWriter{ResponseWriter: w}, r)
	})
}

// fallbackWriter intercepts the first WriteHeader: a non-JSON error
// status is replaced by the JSON error body and the original payload
// suppressed. The Allow header of a 405 survives the rewrite.
type fallbackWriter struct {
	http.ResponseWriter
	wroteHeader bool
	suppress    bool
}

func (f *fallbackWriter) WriteHeader(status int) {
	if f.wroteHeader {
		return
	}
	f.wroteHeader = true
	if status >= 400 && f.Header().Get("Content-Type") != "application/json" {
		f.suppress = true
		f.Header().Del("X-Content-Type-Options")
		writeErr(f.ResponseWriter, status, codeForStatus(status), "%s", http.StatusText(status))
		return
	}
	f.ResponseWriter.WriteHeader(status)
}

func (f *fallbackWriter) Write(p []byte) (int, error) {
	if !f.wroteHeader {
		f.WriteHeader(http.StatusOK)
	}
	if f.suppress {
		return len(p), nil
	}
	return f.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so event streams survive the
// JSON fallback wrapper.
func (f *fallbackWriter) Flush() {
	if fl, ok := f.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// readBody slurps a size-capped request body: an oversized upload is
// answered with 413 and the cap, anything else unreadable with 400.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				"request body exceeds the %d-byte cap", s.cfg.MaxBodyBytes)
			return nil, false
		}
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return nil, false
	}
	return data, true
}
