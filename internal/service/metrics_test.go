package service

import (
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestLatencyBucketLabels pins the derived labels to the bounds: one
// "<bound" label per bound plus the unbounded tail, and the bucket
// array constant sized to match. A drift between bounds, labels, and
// numLatencyBuckets breaks metrics consumers silently — this test makes
// it loud.
func TestLatencyBucketLabels(t *testing.T) {
	want := []string{"<1ms", "<10ms", "<100ms", "<1s", "<10s", ">=10s"}
	if !reflect.DeepEqual(LatencyBucketLabels, want) {
		t.Fatalf("LatencyBucketLabels = %q, want %q", LatencyBucketLabels, want)
	}
	if len(LatencyBucketLabels) != len(latencyBucketBounds)+1 {
		t.Fatalf("%d labels for %d bounds", len(LatencyBucketLabels), len(latencyBucketBounds))
	}
	if numLatencyBuckets != len(latencyBucketBounds)+1 {
		t.Fatalf("numLatencyBuckets = %d, want %d", numLatencyBuckets, len(latencyBucketBounds)+1)
	}
}

// TestRouteMetricsObserve pins the status classification and bucket
// assignment of the lock-free observe path.
func TestRouteMetricsObserve(t *testing.T) {
	m := newMetrics()
	m.observe("GET /x", http.StatusOK, 500*time.Microsecond)        // bucket 0
	m.observe("GET /x", http.StatusTooManyRequests, 5*time.Second)  // bucket 4, error, shed
	m.observe("GET /x", http.StatusServiceUnavailable, time.Minute) // bucket 5, error, timeout
	m.observe("GET /x", http.StatusNotFound, time.Millisecond)      // bucket 1 (>= bound), error

	snap := m.snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d routes, want 1", len(snap))
	}
	r := snap[0]
	if r.Route != "GET /x" || r.Count != 4 || r.Errors != 3 || r.Shed != 1 || r.Timeouts != 1 {
		t.Fatalf("unexpected counters: %+v", r)
	}
	wantBuckets := []uint64{1, 1, 0, 0, 1, 1}
	if !reflect.DeepEqual(r.Buckets, wantBuckets) {
		t.Fatalf("buckets = %v, want %v", r.Buckets, wantBuckets)
	}
	wantDur := uint64(500*time.Microsecond + 5*time.Second + time.Minute + time.Millisecond)
	if r.DurNanos != wantDur {
		t.Fatalf("DurNanos = %d, want %d", r.DurNanos, wantDur)
	}
}

// TestMetricsConcurrentObserve hammers registration and observation
// from many goroutines; under -race it proves the copy-on-write route
// map and the atomic counters need no lock on the hot path.
func TestMetricsConcurrentObserve(t *testing.T) {
	m := newMetrics()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			route := fmt.Sprintf("GET /r%d", g%4)
			for i := 0; i < perG; i++ {
				m.observe(route, http.StatusOK, time.Millisecond)
				if i%100 == 0 {
					m.snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, r := range m.snapshot() {
		total += r.Count
	}
	if total != goroutines*perG {
		t.Fatalf("observed %d requests, want %d", total, goroutines*perG)
	}
}

// historyTotals builds a per-tenant totals map for driving the ring.
func historyTotals(pairs ...any) map[string]tenantCounter {
	out := map[string]tenantCounter{}
	for i := 0; i+2 < len(pairs); i += 3 {
		out[pairs[i].(string)] = tenantCounter{
			requests: uint64(pairs[i+1].(int)),
			shed:     uint64(pairs[i+2].(int)),
		}
	}
	return out
}

// TestMetricsHistoryWraparound fills the ring past its limit and
// checks the oldest windows fall off while deltas stay per-window.
func TestMetricsHistoryWraparound(t *testing.T) {
	h := newMetricsHistory(time.Second, 3)
	now := h.start
	for i := 1; i <= 5; i++ {
		now = now.Add(time.Second)
		h.observe(now, historyTotals("a", 10*i, i))
	}
	ws := h.snapshot()
	if len(ws) != 3 {
		t.Fatalf("ring holds %d windows, want 3", len(ws))
	}
	for i, w := range ws {
		if len(w.Tenants) != 1 || w.Tenants[0].Tenant != "a" {
			t.Fatalf("window %d: %+v", i, w)
		}
		// Each window saw a delta of 10 requests / 1 shed.
		if w.Tenants[0].Requests != 10 || w.Tenants[0].Shed != 1 {
			t.Fatalf("window %d delta = %+v, want 10/1", i, w.Tenants[0])
		}
	}
	// Oldest surviving window is the third capture.
	if ws[0].Start >= ws[1].Start || ws[1].Start >= ws[2].Start {
		t.Fatalf("windows out of order: %v", ws)
	}
}

// TestMetricsHistoryLimitOne checks the degenerate ring of one window:
// every capture replaces the previous one.
func TestMetricsHistoryLimitOne(t *testing.T) {
	h := newMetricsHistory(time.Second, 1)
	now := h.start.Add(time.Second)
	h.observe(now, historyTotals("a", 1, 0))
	now = now.Add(time.Second)
	h.observe(now, historyTotals("a", 5, 2))
	ws := h.snapshot()
	if len(ws) != 1 {
		t.Fatalf("ring holds %d windows, want 1", len(ws))
	}
	got := ws[0].Tenants[0]
	if got.Requests != 4 || got.Shed != 2 {
		t.Fatalf("latest window delta = %+v, want 4/2", got)
	}
}

// TestMetricsHistoryNoElapse checks that a scrape inside the window
// captures nothing, and that idle tenants are omitted from a capture.
func TestMetricsHistoryNoElapse(t *testing.T) {
	h := newMetricsHistory(time.Minute, 4)
	h.observe(h.start.Add(time.Second), historyTotals("a", 100, 0))
	if ws := h.snapshot(); len(ws) != 0 {
		t.Fatalf("window captured before elapse: %v", ws)
	}
	h.observe(h.start.Add(2*time.Minute), historyTotals("a", 100, 0, "b", 3, 1))
	h.observe(h.start.Add(5*time.Minute), historyTotals("a", 100, 0, "b", 3, 1))
	ws := h.snapshot()
	// An idle elapsed period still captures a window — the ring records
	// time between observations — but with no tenant entries.
	if len(ws) != 2 {
		t.Fatalf("ring holds %d windows, want 2: %v", len(ws), ws)
	}
	if len(ws[0].Tenants) != 2 {
		t.Fatalf("first window tenants = %+v", ws[0].Tenants)
	}
	if len(ws[1].Tenants) != 0 {
		t.Fatalf("idle window has tenants: %+v", ws[1].Tenants)
	}
}

// TestMetricsHistoryConcurrent drives observes and snapshots from many
// goroutines; -race verifies the ring's locking.
func TestMetricsHistoryConcurrent(t *testing.T) {
	h := newMetricsHistory(time.Millisecond, 8)
	base := h.start
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 200; i++ {
				h.observe(base.Add(time.Duration(g*200+i)*time.Millisecond),
					historyTotals("t", g*200+i, 0))
				h.snapshot()
			}
		}(g)
	}
	wg.Wait()
	if ws := h.snapshot(); len(ws) > 8 {
		t.Fatalf("ring exceeded its limit: %d windows", len(ws))
	}
}
