package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/distrib"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/whatif"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	store := s.store.Stats()
	reg := s.reg.Stats()
	hits := reg.Sessions.Hits + reg.Sessions.ReportHits
	rate := 0.0
	if total := hits + reg.Sessions.Misses; total > 0 {
		rate = 100 * float64(hits) / float64(total)
	}
	queued, executing, tenants := s.adm.snapshot()
	resp := MetricsResponse{
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		BucketLabels:  LatencyBucketLabels,
		Requests:      s.metrics.snapshot(),
		Admission: AdmissionMetrics{
			Queued: queued, Executing: executing, Tenants: tenants,
			MaxClients: s.cfg.MaxClients, QueueDepth: s.cfg.QueueDepth,
			Draining: s.adm.draining.Load(),
		},
		WhatIf: WhatIfMetrics{
			StoreEntries:   store.Entries,
			StoreHits:      store.Hits,
			StoreMisses:    store.Misses,
			StoreEvictions: store.Evictions,
			SessionHits:    hits,
			SessionMisses:  reg.Sessions.Misses,
			SessionHitRate: rate,
		},
		Sessions: SessionsMetrics{
			Active: reg.Active, Tenants: reg.Tenants,
			Created: reg.Created, Evicted: reg.Evicted, QuotaEvicted: reg.QuotaEvicted,
		},
	}
	s.jobsMu.Lock()
	resp.Campaigns.Jobs = len(s.jobs)
	for _, cj := range s.jobs {
		switch cj.stateNow() {
		case "running":
			resp.Campaigns.Running++
		case "done":
			resp.Campaigns.Done++
		case "failed":
			resp.Campaigns.Failed++
		case "cancelled":
			resp.Campaigns.Cancelled++
		}
	}
	s.jobsMu.Unlock()
	if s.l2 != nil {
		ds := s.l2.Stats()
		resp.Cache = &CacheMetrics{
			Entries: ds.Entries, Bytes: ds.Bytes, MaxBytes: ds.MaxBytes,
			Hits: ds.Hits, Misses: ds.Misses, Evictions: ds.Evictions,
			Corrupt: ds.Corrupt, Skipped: ds.Skipped,
		}
	}
	s.history.observe(time.Now(), s.adm.snapshotTenants())
	resp.History = s.history.snapshot()
	writeJSON(w, http.StatusOK, resp)
}

// handleAnalyze runs the one-shot compositional analysis of an
// uploaded spec. Repeated uploads of the same system are served from
// the shared memo store.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	index, err := queryInt(r, "index", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	sys, _, err := buildScenario(body, index)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	sess := whatif.NewSystemSession(sys, whatif.Options{Store: s.storeFor(r), Workers: s.cfg.Workers})
	a, err := sess.Analyze(s.cfg.MaxIterations)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, CodeAnalysisFailed, "analysis: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, summarize(a))
}

// handleSimulate cross-validates an uploaded spec: a netsim seed fan
// folded against the compositional bounds, exactly the campaign's
// per-scenario validation stage.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	index, err := queryInt(r, "index", 0)
	if err == nil {
		var seeds int
		if seeds, err = queryInt(r, "seeds", 2); err == nil && seeds <= 0 {
			err = fmt.Errorf("query seeds: %d must be positive", seeds)
		}
		if err == nil {
			var duration time.Duration
			if duration, err = queryDuration(r, "duration", 200*time.Millisecond); err == nil {
				s.simulate(w, r, body, index, seeds, duration)
				return
			}
		}
	}
	writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
}

func (s *Server) simulate(w http.ResponseWriter, r *http.Request, body []byte, index, seeds int, duration time.Duration) {
	sys, _, err := buildScenario(body, index)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	topo, err := netsim.FromSystem(sys)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	sess := whatif.NewSystemSession(sys, whatif.Options{Store: s.storeFor(r), Workers: s.cfg.Workers})
	a, err := sess.Analyze(s.cfg.MaxIterations)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, CodeAnalysisFailed, "analysis: %v", err)
		return
	}
	if !a.Converged {
		writeErr(w, http.StatusUnprocessableEntity, CodeAnalysisFailed,
			"analysis did not converge; bounds are not comparable")
		return
	}
	st, err := campaign.CrossValidate(sys, a, topo, seeds, duration)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, CodeAnalysisFailed, "simulation: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		Runs: st.SimRuns, Frames: st.Frames, Violations: st.Violations,
		Losses: st.Losses, LossPredicted: st.LossPredicted,
		MinMarginPct: marginString(st.MinMarginPct),
	})
}

// handleSessionCreate opens a persistent what-if session on scenario
// `index` of the uploaded spec.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.reg.Sweep()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	index, err := queryInt(r, "index", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	sys, _, err := buildScenario(body, index)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	sess := whatif.NewSystemSession(sys, whatif.Options{Store: s.store, Workers: s.cfg.Workers})
	id, err := s.reg.Add(sess, tenantOf(r))
	if err != nil {
		// Quota exhausted with every session busy: the tenant must
		// release or finish work before opening another.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, CodeSessionQuota, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, SessionCreated{
		ID: id, TTLSeconds: s.reg.TTL().Seconds(),
	})
}

// acquireSession resolves {id}, answering 404 when unknown.
func (s *Server) acquireSession(w http.ResponseWriter, r *http.Request) (*whatif.SystemSession, func(), bool) {
	s.reg.Sweep()
	id := r.PathValue("id")
	_, sp := obs.StartSpan(r.Context(), "session.acquire")
	sess, release, ok := s.reg.Acquire(id)
	sp.SetAttr("session", id)
	sp.SetBool("found", ok)
	sp.End()
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, "unknown session %q", id)
		return nil, nil, false
	}
	return sess, release, true
}

func (s *Server) handleSessionAnalysis(w http.ResponseWriter, r *http.Request) {
	sess, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer release()
	a, err := sess.Analyze(s.cfg.MaxIterations)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, CodeAnalysisFailed, "analysis: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, summarize(a))
}

// handleSessionChanges applies an uploaded system change script and
// re-verifies incrementally — the supplier-revision hot path.
func (s *Server) handleSessionChanges(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	changes, err := whatif.ParseSystemScript(bytes.NewReader(body))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if len(changes) == 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "empty change script")
		return
	}
	sess, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer release()
	if err := sess.Apply(changes...); err != nil {
		// Addressing errors: part of the script may have applied; the
		// client should treat the session as dirty and re-create it.
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "apply: %v", err)
		return
	}
	a, err := sess.Analyze(s.cfg.MaxIterations)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, CodeAnalysisFailed, "analysis: %v", err)
		return
	}
	resp := ChangesApplied{Applied: len(changes), Analysis: summarize(a)}
	for _, c := range changes {
		resp.Changes = append(resp.Changes, c.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	st := sess.Stats()
	release()
	hits := st.Hits + st.ReportHits
	rate := 0.0
	if total := hits + st.Misses; total > 0 {
		rate = 100 * float64(hits) / float64(total)
	}
	writeJSON(w, http.StatusOK, SessionInfo{
		ID: r.PathValue("id"), ReportHits: st.ReportHits,
		Hits: st.Hits, Misses: st.Misses, HitRatePct: rate,
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.reg.Sweep()
	if !s.reg.Remove(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, CodeNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// campaignJob tracks one async campaign job, local or distributed.
// Observers (status, SSE, long-poll) watch it through seq/watch: seq
// increments on every observable change and watch is closed-and-
// replaced, so any number of watchers wake without polling the job.
type campaignJob struct {
	id string

	mu     sync.Mutex
	job    *campaign.Job
	run    func(ctx context.Context) (*campaign.Report, error)
	cancel context.CancelFunc
	state  string // running | done | failed | cancelled
	err    error
	report *campaign.Report

	seq   uint64
	watch chan struct{}

	// Distributed-run bookkeeping, fed by coordinator events.
	distributed bool
	shards      ShardStatus
	events      []distrib.Event // bounded ring of recent shard events
	eventsBase  uint64          // absolute index of events[0]
}

// maxJobEvents bounds the per-job shard event ring.
const maxJobEvents = 256

func (cj *campaignJob) stateNow() string {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.state
}

// bump publishes an observable change. Callers hold cj.mu.
func (cj *campaignJob) bump() {
	cj.seq++
	close(cj.watch)
	cj.watch = make(chan struct{})
}

// watchCh returns the channel closed at the next observable change.
func (cj *campaignJob) watchCh() <-chan struct{} {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.watch
}

// record folds one coordinator event into the job's shard bookkeeping
// and wakes the watchers. It runs on the coordinator's dispatch path
// (calls are serialised by distrib).
func (cj *campaignJob) record(e distrib.Event) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	switch e.Type {
	case distrib.EventShardDone:
		cj.shards.Done++
	case distrib.EventShardFailed:
		cj.shards.Failed++
	case distrib.EventWorkerDropped:
		cj.shards.DroppedWorkers++
	}
	cj.events = append(cj.events, e)
	if len(cj.events) > maxJobEvents {
		drop := len(cj.events) - maxJobEvents
		cj.events = cj.events[drop:]
		cj.eventsBase += uint64(drop)
	}
	cj.bump()
}

// eventsSince returns the shard events with absolute index >= since
// and the absolute index one past the last returned event.
func (cj *campaignJob) eventsSince(since uint64) ([]distrib.Event, uint64) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	next := cj.eventsBase + uint64(len(cj.events))
	if since >= next {
		return nil, next
	}
	if since < cj.eventsBase {
		since = cj.eventsBase
	}
	return append([]distrib.Event(nil), cj.events[since-cj.eventsBase:]...), next
}

// start launches (or resumes) the job under a context derived from the
// server's lifetime.
func (cj *campaignJob) start(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	cj.cancel = cancel
	cj.state = "running"
	run := cj.run
	go func() {
		rep, err := run(ctx)
		cancel()
		cj.mu.Lock()
		defer cj.mu.Unlock()
		switch {
		case err == nil:
			cj.state = "done"
			cj.report = rep
		case errors.Is(err, context.Canceled):
			cj.state = "cancelled"
		default:
			cj.state = "failed"
			cj.err = err
		}
		cj.bump()
	}()
}

// handleCampaignCreate starts an async sharded campaign over the
// uploaded spec.
func (s *Server) handleCampaignCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	sp, err := parseSpecBody(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	var seeds int
	var duration time.Duration
	if seeds, err = queryInt(r, "seeds", 0); err == nil {
		duration, err = queryDuration(r, "duration", 0)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if r.URL.Query().Get("quick") == "true" {
		if sp.Count == 0 {
			sp.Count = 64
		}
		if duration == 0 {
			duration = 100 * time.Millisecond
		}
	}
	// Cap the corpus before generating it — a hostile spec must not be
	// able to commit the server to unbounded generation work.
	effective := sp.Count
	if effective == 0 {
		effective = 500 // scenario.Generate's default
	}
	if s.cfg.MaxCampaignScenarios > 0 && effective > s.cfg.MaxCampaignScenarios {
		writeErr(w, http.StatusBadRequest, CodeCorpusTooLarge,
			"corpus of %d scenarios exceeds the %d-scenario cap", effective, s.cfg.MaxCampaignScenarios)
		return
	}
	cfg := campaign.Config{
		Workers: s.cfg.Workers, Seeds: seeds, Duration: duration,
		MaxIterations: s.cfg.MaxIterations,
		// Local scenario runs stack their private LRUs on the server's
		// shared disk/remote level; a distributed run strips Cache from
		// the wire and each worker brings its own. Flight, like Cache,
		// is process-local and never travels — the recorder keeps the
		// slowest scenarios for GET /v1/debug/slowest.
		Cache:  s.shared,
		Flight: s.flight,
	}
	var job *campaign.Job
	if len(s.cfg.WorkerAddrs) > 0 {
		// Distributed: stream the spec — the coordinator ships (spec,
		// range) per shard and folds the workers' partial fingerprints,
		// so the corpus is never materialized on this server.
		job, err = campaign.NewSpecJob(sp, cfg)
	} else {
		var corpus *scenario.Corpus
		if corpus, err = scenario.Generate(sp); err == nil {
			job, err = campaign.NewJob(corpus, cfg)
		}
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}

	cj := s.registerJob(job, obs.TraceFrom(r.Context()), obs.SpanIDFrom(r.Context()))
	writeJSON(w, http.StatusAccepted, CampaignStarted{ID: cj.id, Scenarios: job.Total()})
}

// lookupJob resolves {id}, answering 404 when unknown.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*campaignJob, bool) {
	s.jobsMu.Lock()
	cj := s.jobs[r.PathValue("id")]
	s.jobsMu.Unlock()
	if cj == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, "unknown campaign %q", r.PathValue("id"))
		return nil, false
	}
	return cj, true
}

// status assembles the job's wire snapshot plus the change sequence
// number it corresponds to (for SSE/long-poll watchers).
func (cj *campaignJob) status() (CampaignStatus, uint64) {
	done, total := cj.job.Progress()
	cj.mu.Lock()
	defer cj.mu.Unlock()
	st := CampaignStatus{ID: cj.id, State: cj.state, Done: done, Total: total, Seq: cj.seq}
	if cj.distributed {
		sh := cj.shards
		st.Shards = &sh
	}
	if cj.err != nil {
		st.Error = cj.err.Error()
	}
	if cj.report != nil {
		rep := cj.report
		st.Summary = &CampaignSummary{
			Corpus:               rep.Fingerprint,
			Scenarios:            rep.Scenarios,
			Converged:            rep.Converged,
			Schedulable:          rep.Schedulable,
			SimRuns:              rep.SimRuns,
			Frames:               rep.Frames,
			Violations:           rep.Violations,
			Losses:               rep.Losses,
			LossOnlyPredicted:    rep.LossOnlyPredicted,
			MedianHitRatePct:     rep.HitRates.Median,
			FlippedUnschedulable: rep.FlippedUnschedulable,
			FlippedSchedulable:   rep.FlippedSchedulable,
		}
	}
	return st, cj.seq
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	cj, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	st, _ := cj.status()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCampaignReport(w http.ResponseWriter, r *http.Request) {
	cj, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	cj.mu.Lock()
	rep := cj.report
	state := cj.state
	cj.mu.Unlock()
	if rep == nil {
		writeErr(w, http.StatusConflict, CodeConflict, "campaign %s is %s; no report yet", cj.id, state)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, rep.Render())
}

func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	cj, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	cj.mu.Lock()
	state := cj.state
	if state == "running" && cj.cancel != nil {
		cj.cancel()
		state = "cancelling"
	}
	cj.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": cj.id, "state": state})
}

// handleCampaignDelete drops a finished job from the table so
// long-running servers do not accumulate corpora and reports; running
// jobs must be cancelled first.
func (s *Server) handleCampaignDelete(w http.ResponseWriter, r *http.Request) {
	cj, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	if cj.stateNow() == "running" {
		writeErr(w, http.StatusConflict, CodeConflict, "campaign %s is running; cancel it first", cj.id)
		return
	}
	s.jobsMu.Lock()
	delete(s.jobs, cj.id)
	s.jobsMu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleCampaignResume restarts a cancelled job over its pending
// scenarios — completed rows are kept, so the eventual report is
// bit-identical to an uninterrupted run.
func (s *Server) handleCampaignResume(w http.ResponseWriter, r *http.Request) {
	cj, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	cj.mu.Lock()
	defer cj.mu.Unlock()
	switch cj.state {
	case "cancelled", "failed":
		cj.err = nil
		cj.start(s.ctx)
	case "running", "done":
		// Nothing to do; report the current state.
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": cj.id, "state": cj.state})
}
