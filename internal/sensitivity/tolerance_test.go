package sensitivity

import (
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/kmatrix"
	"repro/internal/rta"
)

// tightMatrix builds a bus where the lowest-priority message has little
// slack, so tolerances are interior values.
func tightMatrix() *kmatrix.KMatrix {
	return &kmatrix.KMatrix{
		BusName: "tight",
		BitRate: can.Rate125k, // 8-byte frames: 1.08ms
		Messages: []kmatrix.Message{
			{Name: "A", ID: 0x100, DLC: 8, Period: 5 * ms, Sender: "E1"},
			{Name: "B", ID: 0x200, DLC: 8, Period: 10 * ms, Sender: "E1"},
			{Name: "C", ID: 0x300, DLC: 8, Period: 10 * ms, Sender: "E2"},
			{Name: "D", ID: 0x400, DLC: 8, Period: 20 * ms, Deadline: 9 * ms, Sender: "E2"},
		},
	}
}

func TestMessageJitterTolerance(t *testing.T) {
	k := tightMatrix()
	cfg := SweepConfig{}
	// A's jitter interferes with everything below it; D's tight deadline
	// caps it somewhere inside (0, 2).
	tol, err := MessageJitterTolerance(k, "A", cfg, 0, 2.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tol <= 0 || tol >= 2.0 {
		t.Fatalf("tolerance(A) = %v, want interior value", tol)
	}
	// Bisection result consistent with direct analysis on either side.
	for _, tc := range []struct {
		scale float64
		want  bool
	}{{tol - 0.02, true}, {tol + 0.02, false}} {
		trial := k.Clone()
		trial.ByName("A").Jitter = time.Duration(tc.scale * float64(5*ms))
		rep, err := rta.Analyze(trial.ToRTA(), rta.Config{Bus: k.Bus()})
		if err != nil {
			t.Fatal(err)
		}
		if rep.AllSchedulable() != tc.want {
			t.Errorf("at scale %.3f schedulable = %v, want %v",
				tc.scale, rep.AllSchedulable(), tc.want)
		}
	}
}

func TestMessageJitterToleranceEdges(t *testing.T) {
	k := tightMatrix()
	cfg := SweepConfig{}
	// The lowest-priority message's own jitter widens its own response
	// via its WCRT term but hurts nobody else; D's 9ms deadline still
	// caps it below 2.0.
	tol, err := MessageJitterTolerance(k, "D", cfg, 0, 2.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tol <= 0 {
		t.Errorf("tolerance(D) = %v, want positive", tol)
	}
	if _, err := MessageJitterTolerance(k, "ghost", cfg, 0, 1, 0.01); err == nil {
		t.Error("unknown message accepted")
	}
	// Already infeasible at the operating point: negative result.
	over := tightMatrix()
	over.Messages[3].Deadline = time.Millisecond // < C: hopeless
	tol, err = MessageJitterTolerance(over, "A", cfg, 0, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tol >= 0 {
		t.Errorf("tolerance on infeasible bus = %v, want negative", tol)
	}
}

func TestToleranceTableOrdering(t *testing.T) {
	k := tightMatrix()
	table, err := ToleranceTable(k, SweepConfig{}, 0, 1.0, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != len(k.Messages) {
		t.Fatalf("table rows = %d, want %d", len(table), len(k.Messages))
	}
	for i := 1; i < len(table); i++ {
		if table[i-1].MaxJitterScale > table[i].MaxJitterScale {
			t.Error("table not sorted by criticality")
		}
	}
}

func TestExtensibility(t *testing.T) {
	k := tightMatrix()
	template := kmatrix.Message{
		Name: "New", DLC: 8, Period: 10 * ms, Sender: "E3", ID: 0x001, // ID irrelevant
	}
	n, err := Extensibility(k, template, SweepConfig{}, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= 32 {
		t.Fatalf("extensibility = %d, want interior value", n)
	}
	// Direct check on both sides of the bound.
	check := func(count int) bool {
		trial := k.Clone()
		for i := 0; i < count; i++ {
			add := template
			add.Name = string(rune('a' + i))
			add.ID = can.ID(0x500 + i)
			trial.Messages = append(trial.Messages, add)
		}
		rep, err := rta.Analyze(trial.ToRTA(), rta.Config{Bus: k.Bus()})
		if err != nil {
			t.Fatal(err)
		}
		return rep.AllSchedulable()
	}
	if !check(n) {
		t.Errorf("%d additions reported feasible but are not", n)
	}
	if check(n + 1) {
		t.Errorf("%d additions reported infeasible but fit", n+1)
	}
}

func TestExtensibilityEdges(t *testing.T) {
	k := tightMatrix()
	template := kmatrix.Message{Name: "New", DLC: 1, Period: time.Second, Sender: "E3", ID: 1}
	// Tiny slow additions: the whole budget fits.
	n, err := Extensibility(k, template, SweepConfig{}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("extensibility = %d, want full budget 8", n)
	}
	// Infeasible operating point: negative.
	over := tightMatrix()
	over.Messages[3].Deadline = time.Millisecond
	n, err = Extensibility(over, template, SweepConfig{}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n >= 0 {
		t.Errorf("extensibility on infeasible bus = %d, want negative", n)
	}
	// Bad inputs.
	if _, err := Extensibility(k, kmatrix.Message{}, SweepConfig{}, 0, 8); err == nil {
		t.Error("invalid template accepted")
	}
	if _, err := Extensibility(k, template, SweepConfig{}, 0, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Extensibility(k, template, SweepConfig{}, 0, 5000); err == nil {
		t.Error("identifier-space overflow accepted")
	}
}
