package sensitivity

import (
	"fmt"
	"sort"

	"repro/internal/kmatrix"
	"repro/internal/parallel"
	"repro/internal/rta"
	"repro/internal/whatif"
)

// MessageJitterTolerance searches the largest jitter — as a fraction of
// the message's own period, in [0, hi] — that the named message may
// exhibit while every message on the bus still meets its deadline. All
// other messages sit at the operating scale. This is the per-message
// sensitivity figure of Racu et al. that the paper turns into supplier
// requirements: "jitter constraints for the most critical (or sensitive)
// messages can be formulated as requirements for ECU suppliers".
//
// Schedulability is monotone in the jitter, so bisection applies. A
// negative result means the bus is already unschedulable at the
// operating point with zero jitter on the message.
func MessageJitterTolerance(k *kmatrix.KMatrix, message string, cfg SweepConfig,
	operatingScale, hi, eps float64) (float64, error) {

	target := k.ByName(message)
	if target == nil {
		return 0, fmt.Errorf("sensitivity: unknown message %q", message)
	}
	analysis := cfg.Analysis
	analysis.Bus = k.Bus()

	// The bisection probes a single-message jitter edit over and over:
	// the incremental session re-analyses only the edited message and
	// the priorities below it, and shares the untouched prefix across
	// probes (and, with cfg.Cache, across table rows).
	var okAt func(scale float64) (bool, error)
	if cfg.DisableWhatIf {
		okAt = func(scale float64) (bool, error) {
			trial := k.WithJitterScale(operatingScale, cfg.OnlyUnknown)
			m := trial.ByName(message)
			m.Jitter = scaleDuration(scale, m.Period)
			rep, err := rta.Analyze(trial.ToRTA(), analysis)
			if err != nil {
				return false, err
			}
			return rep.AllSchedulable(), nil
		}
	} else {
		sess := whatif.NewBusSession(k, cfg.Analysis, whatif.Options{Store: cfg.Cache, Workers: 1})
		period := target.Period
		okAt = func(scale float64) (bool, error) {
			sess.Reset()
			if err := sess.Apply(
				whatif.ScaleJitter{Scale: operatingScale, OnlyUnknown: cfg.OnlyUnknown},
				whatif.SetJitter{Message: message, Jitter: scaleDuration(scale, period)},
			); err != nil {
				return false, err
			}
			rep, err := sess.Analyze()
			if err != nil {
				return false, err
			}
			return rep.AllSchedulable(), nil
		}
	}

	ok0, err := okAt(0)
	if err != nil {
		return 0, err
	}
	if !ok0 {
		return -1, nil
	}
	okHi, err := okAt(hi)
	if err != nil {
		return 0, err
	}
	if okHi {
		return hi, nil
	}
	lo := 0.0
	for hi-lo > eps {
		mid := (lo + hi) / 2
		ok, err := okAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Tolerance is one row of a tolerance table.
type Tolerance struct {
	// Message names the message.
	Message string
	// MaxJitterScale is the tolerated jitter as a fraction of the
	// message's period (negative: infeasible at the operating point).
	MaxJitterScale float64
}

// ToleranceTable computes the jitter tolerance of every message at the
// operating scale, sorted from most critical (lowest tolerance) to most
// relaxed. The per-message bisections are independent and run on a
// worker pool (cfg.Workers); unless disabled, all rows share one
// content-addressed store, so the common operating-point prefix is
// analysed once for the whole table.
func ToleranceTable(k *kmatrix.KMatrix, cfg SweepConfig, operatingScale, hi, eps float64) ([]Tolerance, error) {
	if !cfg.DisableWhatIf && cfg.Cache == nil {
		cfg.Cache = whatif.NewStore(0)
	}
	out := make([]Tolerance, len(k.Messages))
	errs := make([]error, len(k.Messages))
	parallel.For(len(k.Messages), cfg.Workers, func(_, i int) {
		tol, err := MessageJitterTolerance(k, k.Messages[i].Name, cfg, operatingScale, hi, eps)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = Tolerance{Message: k.Messages[i].Name, MaxJitterScale: tol}
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].MaxJitterScale != out[j].MaxJitterScale {
			return out[i].MaxJitterScale < out[j].MaxJitterScale
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
