package sensitivity

import (
	"math"
	"sort"

	"repro/internal/kmatrix"
	"repro/internal/rta"
)

// LossPoint is one sample of the paper's Figure 5: the fraction of
// messages that miss their deadline (and can thus be lost) at a given
// jitter level.
type LossPoint struct {
	// Scale is the jitter level as a fraction of each period.
	Scale float64
	// MissRatio is the fraction of messages missing their deadline.
	MissRatio float64
	// Missed lists the names of the missing messages, sorted.
	Missed []string
}

// LossCurve derives the message-loss curve from a sweep result.
func (r *Result) LossCurve() []LossPoint {
	out := make([]LossPoint, len(r.Reports))
	for i, rep := range r.Reports {
		p := LossPoint{Scale: r.Scales[i], MissRatio: rep.MissRatio()}
		for _, res := range rep.Results {
			if !res.Schedulable {
				p.Missed = append(p.Missed, res.Message.Name)
			}
		}
		sort.Strings(p.Missed)
		out[i] = p
	}
	return out
}

// Loss runs a sweep and returns only the loss curve.
func Loss(k *kmatrix.KMatrix, cfg SweepConfig) ([]LossPoint, error) {
	res, err := Sweep(k, cfg)
	if err != nil {
		return nil, err
	}
	return res.LossCurve(), nil
}

// FirstLossScale returns the smallest sampled scale with non-zero loss,
// or +Inf if no sampled scale loses messages.
func FirstLossScale(curve []LossPoint) float64 {
	for _, p := range curve {
		if p.MissRatio > 0 {
			return p.Scale
		}
	}
	return math.Inf(1)
}

// MaxTolerableScale searches the largest jitter scale in [0, hi] at
// which the named message still meets its deadline, to within eps.
// It returns a negative value when the message already misses at scale 0.
// Response times are monotone in the sweep scale, so bisection applies;
// this is the "maximum tolerable jitter" sensitivity metric of Racu et
// al. applied to the sweep dimension.
func MaxTolerableScale(k *kmatrix.KMatrix, message string, cfg SweepConfig, hi, eps float64) (float64, error) {
	analysis := cfg.Analysis
	analysis.Bus = k.Bus()

	okAt := func(scale float64) (bool, error) {
		scaled := k.WithJitterScale(scale, cfg.OnlyUnknown)
		rep, err := rta.Analyze(scaled.ToRTA(), analysis)
		if err != nil {
			return false, err
		}
		res := rep.ByName(message)
		if res == nil {
			return false, errUnknownMessage(message)
		}
		return res.Schedulable, nil
	}

	ok0, err := okAt(0)
	if err != nil {
		return 0, err
	}
	if !ok0 {
		return -1, nil
	}
	okHi, err := okAt(hi)
	if err != nil {
		return 0, err
	}
	if okHi {
		return hi, nil
	}
	lo := 0.0
	for hi-lo > eps {
		mid := (lo + hi) / 2
		ok, err := okAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

type errUnknownMessage string

func (e errUnknownMessage) Error() string {
	return "sensitivity: unknown message " + string(e)
}
