package sensitivity

import (
	"math"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/errormodel"
	"repro/internal/kmatrix"
	"repro/internal/rta"
)

const ms = time.Millisecond

// smallMatrix builds a 4-message bus for fast, hand-checkable sweeps.
func smallMatrix() *kmatrix.KMatrix {
	return &kmatrix.KMatrix{
		BusName: "test",
		BitRate: can.Rate500k,
		Messages: []kmatrix.Message{
			{Name: "A", ID: 0x100, DLC: 8, Period: 5 * ms, Sender: "ECU1"},
			{Name: "B", ID: 0x200, DLC: 8, Period: 10 * ms, Sender: "ECU1"},
			{Name: "C", ID: 0x300, DLC: 8, Period: 20 * ms, Sender: "ECU2"},
			{Name: "D", ID: 0x400, DLC: 8, Period: 50 * ms, Sender: "ECU2"},
		},
	}
}

func TestDefaultScales(t *testing.T) {
	s := DefaultScales()
	if len(s) != 13 {
		t.Fatalf("len = %d, want 13", len(s))
	}
	if s[0] != 0 || math.Abs(s[12]-0.60) > 1e-9 {
		t.Errorf("scales span [%v, %v], want [0, 0.60]", s[0], s[12])
	}
	for i := 1; i < len(s); i++ {
		if math.Abs(s[i]-s[i-1]-0.05) > 1e-9 {
			t.Errorf("step %d-%d = %v, want 0.05", i-1, i, s[i]-s[i-1])
		}
	}
}

func TestSweepStructure(t *testing.T) {
	k := smallMatrix()
	res, err := Sweep(k, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 {
		t.Fatalf("curves = %d, want 4", len(res.Curves))
	}
	if len(res.Reports) != len(res.Scales) {
		t.Fatalf("reports = %d, scales = %d", len(res.Reports), len(res.Scales))
	}
	for _, c := range res.Curves {
		if len(c.Points) != len(res.Scales) {
			t.Fatalf("curve %s has %d points, want %d", c.Message, len(c.Points), len(res.Scales))
		}
		for i, p := range c.Points {
			if p.Scale != res.Scales[i] {
				t.Errorf("curve %s point %d scale %v != %v", c.Message, i, p.Scale, res.Scales[i])
			}
			if p.WCRT != rta.Unschedulable && p.Delay > p.WCRT {
				t.Errorf("curve %s: delay %v exceeds WCRT %v", c.Message, p.Delay, p.WCRT)
			}
		}
	}
	// Curves are ordered by priority.
	for i := 1; i < len(res.Curves); i++ {
		if res.Curves[i-1].Priority >= res.Curves[i].Priority {
			t.Error("curves not ordered by priority")
		}
	}
	if res.CurveByName("D") == nil || res.CurveByName("nope") != nil {
		t.Error("CurveByName lookup wrong")
	}
}

func TestSweepWCRTMonotoneInScale(t *testing.T) {
	res, err := Sweep(smallMatrix(), SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Curves {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].WCRT < c.Points[i-1].WCRT {
				t.Errorf("curve %s: WCRT decreased from %v to %v at scale %v",
					c.Message, c.Points[i-1].WCRT, c.Points[i].WCRT, c.Points[i].Scale)
			}
		}
	}
}

func TestSweepHighestPriorityIsRobust(t *testing.T) {
	res, err := Sweep(smallMatrix(), SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.CurveByName("A")
	// A's from-arrival delay is blocking + own transmission at every
	// scale: 270us + 270us, fully flat.
	for _, p := range a.Points {
		if p.Delay != 540*time.Microsecond {
			t.Errorf("A delay at %.2f = %v, want 540us", p.Scale, p.Delay)
		}
	}
	if got := Classify(a, ClassifyConfig{}); got != Robust {
		t.Errorf("A classified %v, want robust", got)
	}
	if g := a.Growth(); g != 0 {
		t.Errorf("A growth = %v, want 0", g)
	}
}

func TestSweepOnlyUnknownPreservesKnownJitters(t *testing.T) {
	k := smallMatrix()
	k.Messages[0].Jitter = 1 * ms
	k.Messages[0].JitterKnown = true
	res, err := Sweep(k, SweepConfig{Scales: []float64{0, 0.5}, OnlyUnknown: true})
	if err != nil {
		t.Fatal(err)
	}
	// A keeps its 1ms jitter at both scales: its WCRT includes J = 1ms.
	a := res.CurveByName("A")
	if a.Points[0].WCRT != a.Points[1].WCRT {
		t.Errorf("known-jitter message changed across sweep: %v vs %v",
			a.Points[0].WCRT, a.Points[1].WCRT)
	}
}

func TestClassifyThresholds(t *testing.T) {
	mk := func(d0, d1 time.Duration) *Curve {
		return &Curve{Points: []Point{
			{Scale: 0, Delay: d0, WCRT: d0, Schedulable: true},
			{Scale: 0.6, Delay: d1, WCRT: d1, Schedulable: true},
		}}
	}
	tests := []struct {
		name string
		c    *Curve
		want Class
	}{
		{"flat", mk(10*ms, 10*ms), Robust},
		{"mild", mk(10*ms, 12*ms), Robust},
		{"medium", mk(10*ms, 15*ms), Medium},
		{"steep", mk(10*ms, 20*ms), Sensitive},
		{"very steep", mk(10*ms, 40*ms), VerySensitive},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.c, ClassifyConfig{}); got != tt.want {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
	// Unbounded points force very sensitive regardless of earlier shape.
	unb := mk(10*ms, 10*ms)
	unb.Points[1].Delay = rta.Unschedulable
	unb.Points[1].WCRT = rta.Unschedulable
	if got := Classify(unb, ClassifyConfig{}); got != VerySensitive {
		t.Errorf("unbounded curve classified %v, want very sensitive", got)
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Robust:        "robust",
		Medium:        "medium sensitivity",
		Sensitive:     "sensitive",
		VerySensitive: "very sensitive",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if Class(9).String() == "" {
		t.Error("unknown class should render")
	}
}

func TestPowertrainClassSpread(t *testing.T) {
	// Figure 4's qualitative claim: the case-study bus contains both
	// robust and sensitive messages.
	k := kmatrix.Powertrain(kmatrix.GenConfig{Seed: 1})
	res, err := Sweep(k, SweepConfig{Analysis: rta.Config{
		Stuffing: can.StuffingWorstCase, DeadlineModel: rta.DeadlineImplicit}})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.ClassCounts(ClassifyConfig{})
	if counts[Robust] == 0 {
		t.Error("no robust messages found")
	}
	if counts[Sensitive]+counts[VerySensitive] == 0 {
		t.Error("no sensitive messages found")
	}
	classes := res.Classification(ClassifyConfig{})
	if len(classes) != len(k.Messages) {
		t.Errorf("classification covers %d of %d messages", len(classes), len(k.Messages))
	}
}

func TestLossCurveShapes(t *testing.T) {
	// The Figure 5 regression: best case loses nothing at zero jitter and
	// nothing through 25%; the worst case loses messages earlier and
	// strictly dominates the best case everywhere.
	k := kmatrix.Powertrain(kmatrix.GenConfig{Seed: 1})
	best, err := Loss(k, SweepConfig{Analysis: rta.Config{
		Stuffing: can.StuffingNominal, DeadlineModel: rta.DeadlineImplicit}})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := Loss(k, SweepConfig{Analysis: rta.Config{
		Stuffing:      can.StuffingWorstCase,
		Errors:        errormodel.Burst{Interval: 10 * ms, Length: 3, Gap: 100 * time.Microsecond},
		DeadlineModel: rta.DeadlineImplicit,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if best[0].MissRatio != 0 {
		t.Error("best case must lose nothing at zero jitter (paper experiment 1)")
	}
	for i, p := range best {
		if p.Scale <= 0.251 && p.MissRatio > 0 {
			t.Errorf("best case loses %.0f%% at scale %.2f; want 0 through 25%%",
				100*p.MissRatio, p.Scale)
		}
		if worst[i].MissRatio < p.MissRatio {
			t.Errorf("worst case below best case at scale %.2f", p.Scale)
		}
	}
	if FirstLossScale(worst) >= FirstLossScale(best) {
		t.Errorf("worst case should lose earlier (%.2f) than best case (%.2f)",
			FirstLossScale(worst), FirstLossScale(best))
	}
	last := worst[len(worst)-1]
	if last.MissRatio < 0.25 {
		t.Errorf("worst case at 60%% jitter = %.0f%%; want substantial loss", 100*last.MissRatio)
	}
	if len(last.Missed) == 0 {
		t.Error("missed message names not reported")
	}
}

func TestFirstLossScaleNoLoss(t *testing.T) {
	curve := []LossPoint{{Scale: 0}, {Scale: 0.3}}
	if !math.IsInf(FirstLossScale(curve), 1) {
		t.Error("loss-free curve should report +Inf")
	}
}

func TestMaxTolerableScale(t *testing.T) {
	k := smallMatrix()
	cfg := SweepConfig{Analysis: rta.Config{DeadlineModel: rta.DeadlineMinReArrival}}
	// Under the min-re-arrival deadline every message eventually fails as
	// jitter rises (D = T - J shrinks while R grows).
	got, err := MaxTolerableScale(k, "D", cfg, 1.0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got >= 1.0 {
		t.Fatalf("MaxTolerableScale(D) = %v, want interior value", got)
	}
	// Verify the bisection result against direct analysis on both sides.
	for _, tc := range []struct {
		scale float64
		want  bool
	}{{got - 0.002, true}, {got + 0.002, false}} {
		scaled := k.WithJitterScale(tc.scale, false)
		rep, err := rta.Analyze(scaled.ToRTA(), rta.Config{Bus: k.Bus(), DeadlineModel: rta.DeadlineMinReArrival})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ByName("D").Schedulable != tc.want {
			t.Errorf("at scale %.3f schedulable = %v, want %v",
				tc.scale, rep.ByName("D").Schedulable, tc.want)
		}
	}
}

func TestMaxTolerableScaleEdges(t *testing.T) {
	k := smallMatrix()
	cfg := SweepConfig{}
	// With implicit deadlines and light load, the whole range is fine.
	got, err := MaxTolerableScale(k, "A", cfg, 0.6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.6 {
		t.Errorf("MaxTolerableScale(A) = %v, want full range 0.6", got)
	}
	if _, err := MaxTolerableScale(k, "nope", cfg, 0.6, 0.01); err == nil {
		t.Error("unknown message accepted")
	}
}
