// Package sensitivity implements the what-if analyses of the paper's
// case study: jitter sweeps over a communication matrix (Section 4,
// Figures 4 and 5), the robust/sensitive classification of messages, and
// the search for the maximum tolerable jitter of each message (Racu,
// Jersak & Ernst, RTAS 2005).
//
// A sweep re-runs the worst-case response-time analysis of package rta
// with every message's send jitter set to x% of its period, for x over a
// configurable range. From the resulting per-message curves the package
// derives:
//
//   - sensitivity classes (Figure 4): how fast the response time grows
//     with jitter;
//   - loss curves (Figure 5): the fraction of messages missing their
//     deadline at each jitter level;
//   - robustness margins: the largest jitter scale a message tolerates.
package sensitivity
