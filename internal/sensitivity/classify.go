package sensitivity

import "fmt"

// Class is the robustness category of a message's jitter-sensitivity
// curve, matching the annotations of the paper's Figure 4.
type Class int

const (
	// Robust messages keep a near-constant response time over the sweep.
	Robust Class = iota
	// Medium messages grow noticeably but stay well bounded.
	Medium
	// Sensitive messages grow steeply with jitter.
	Sensitive
	// VerySensitive messages grow drastically or become unschedulable
	// within the sweep.
	VerySensitive
)

// String names the class as in Figure 4.
func (c Class) String() string {
	switch c {
	case Robust:
		return "robust"
	case Medium:
		return "medium sensitivity"
	case Sensitive:
		return "sensitive"
	case VerySensitive:
		return "very sensitive"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassifyConfig holds the growth thresholds separating the classes.
// Growth is the relative increase of the from-arrival delay over the
// full sweep (see Curve.Growth).
type ClassifyConfig struct {
	// RobustBelow bounds the growth of robust messages (default 0.25).
	RobustBelow float64
	// MediumBelow bounds medium sensitivity (default 0.75).
	MediumBelow float64
	// SensitiveBelow bounds sensitive; anything above, or any point with
	// an unbounded response, is very sensitive (default 1.5).
	SensitiveBelow float64
}

// DefaultClassify returns the thresholds used for Figure 4.
func DefaultClassify() ClassifyConfig {
	return ClassifyConfig{RobustBelow: 0.25, MediumBelow: 0.75, SensitiveBelow: 1.5}
}

func (cc ClassifyConfig) withDefaults() ClassifyConfig {
	d := DefaultClassify()
	if cc.RobustBelow == 0 {
		cc.RobustBelow = d.RobustBelow
	}
	if cc.MediumBelow == 0 {
		cc.MediumBelow = d.MediumBelow
	}
	if cc.SensitiveBelow == 0 {
		cc.SensitiveBelow = d.SensitiveBelow
	}
	return cc
}

// Classify assigns a robustness class to a sweep curve. Sensitivity is a
// property of the delay curve's steepness, independent of the deadline
// experiment of Figure 5; only an unbounded response forces the very
// sensitive class directly.
func Classify(c *Curve, cc ClassifyConfig) Class {
	cc = cc.withDefaults()
	g := c.Growth()
	switch {
	case g < cc.RobustBelow:
		return Robust
	case g < cc.MediumBelow:
		return Medium
	case g < cc.SensitiveBelow:
		return Sensitive
	default:
		return VerySensitive
	}
}

// Classification maps every message of a sweep to its class.
func (r *Result) Classification(cc ClassifyConfig) map[string]Class {
	out := make(map[string]Class, len(r.Curves))
	for i := range r.Curves {
		out[r.Curves[i].Message] = Classify(&r.Curves[i], cc)
	}
	return out
}

// ClassCounts tallies how many messages fall into each class.
func (r *Result) ClassCounts(cc ClassifyConfig) map[Class]int {
	out := map[Class]int{}
	for i := range r.Curves {
		out[Classify(&r.Curves[i], cc)]++
	}
	return out
}
