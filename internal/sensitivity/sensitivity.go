package sensitivity

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cache"
	"repro/internal/kmatrix"
	"repro/internal/parallel"
	"repro/internal/rta"
	"repro/internal/whatif"
)

// DefaultScales is the paper's sweep grid: 0% to 60% of the message
// period in 5% steps (the x-axis of Figures 4 and 5).
func DefaultScales() []float64 {
	scales := make([]float64, 0, 13)
	for s := 0.0; s <= 0.601; s += 0.05 {
		scales = append(scales, s)
	}
	return scales
}

// SweepConfig parameterises a jitter sweep.
type SweepConfig struct {
	// Scales are the jitter levels as fractions of each message's
	// period. Nil selects DefaultScales.
	Scales []float64
	// OnlyUnknown, when set, leaves supplier-provided jitters untouched
	// and sweeps only the assumed ones.
	OnlyUnknown bool
	// Analysis is the response-time configuration (stuffing, errors,
	// deadline model). Its Bus field is overwritten from the matrix.
	Analysis rta.Config
	// Workers bounds the worker pool of the sweep (and of the derived
	// tolerance/extensibility searches). Zero or negative selects
	// GOMAXPROCS. Results are identical for every worker count.
	Workers int
	// Cache is the content-addressed store backing the incremental
	// what-if sessions; nil gives every search a private store. Pass a
	// shared store to let related searches (sweep plus tolerance table,
	// repeated sweeps over variants of one matrix) share converged
	// per-message results — a cache.Tiered store extends the sharing
	// across processes.
	Cache cache.Store
	// DisableWhatIf bypasses the incremental engine: every variant is a
	// fresh clone put through a full analysis (the pre-whatif
	// behaviour). Results are bit-identical either way.
	DisableWhatIf bool
}

func (c SweepConfig) scales() []float64 {
	if len(c.Scales) > 0 {
		return c.Scales
	}
	return DefaultScales()
}

// Point is one sweep sample of one message.
type Point struct {
	// Scale is the jitter level (fraction of the period).
	Scale float64
	// WCRT is the worst-case response time measured from the nominal
	// activation instant, i.e. including the activation jitter
	// (rta.Unschedulable if unbounded).
	WCRT time.Duration
	// Delay is the worst-case delay measured from the actual queueing of
	// the message (WCRT minus the activation jitter): the y-axis of the
	// paper's Figure 4. It stays flat for messages that are robust
	// against the jitters of the rest of the bus.
	Delay time.Duration
	// Deadline is the deadline in force at this level (it shrinks with
	// jitter under the min-re-arrival model).
	Deadline time.Duration
	// Schedulable reports WCRT <= Deadline.
	Schedulable bool
}

// Curve is the response-time-versus-jitter curve of one message —
// one line of Figure 4.
type Curve struct {
	// Message is the message name.
	Message string
	// Period is the message period (jitter scales refer to it).
	Period time.Duration
	// Priority is the message's rank at scale 0.
	Priority int
	// Points holds one sample per sweep scale.
	Points []Point
}

// WCRTAt returns the response time at the given scale, or Unschedulable
// if the scale was not sampled.
func (c *Curve) WCRTAt(scale float64) time.Duration {
	for _, p := range c.Points {
		if p.Scale == scale {
			return p.WCRT
		}
	}
	return rta.Unschedulable
}

// DelayAt returns the from-arrival delay at the given scale, or
// Unschedulable if the scale was not sampled.
func (c *Curve) DelayAt(scale float64) time.Duration {
	for _, p := range c.Points {
		if p.Scale == scale {
			return p.Delay
		}
	}
	return rta.Unschedulable
}

// Growth returns the relative growth of the from-arrival delay over the
// sweep: (D_last - D_first) / D_first. This is the Figure 4 sensitivity
// metric: robust messages have near-zero growth even though their
// nominal-instant response trivially grows with their own jitter.
// Unschedulable samples report +Inf.
func (c *Curve) Growth() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	first, last := c.Points[0].Delay, c.Points[len(c.Points)-1].Delay
	if first == rta.Unschedulable || last == rta.Unschedulable || first <= 0 {
		return math.Inf(1)
	}
	return float64(last-first) / float64(first)
}

// Result is the outcome of a sweep over a complete matrix.
type Result struct {
	// Scales echoes the sweep grid.
	Scales []float64
	// Curves holds one curve per message, ordered by priority at scale 0.
	Curves []Curve
	// Reports holds the full analysis report per scale, aligned with
	// Scales, for loss counting.
	Reports []*rta.Report
}

// CurveByName returns the curve of the named message, or nil.
func (r *Result) CurveByName(name string) *Curve {
	for i := range r.Curves {
		if r.Curves[i].Message == name {
			return &r.Curves[i]
		}
	}
	return nil
}

// Sweep runs the jitter sweep over the matrix. The scales are analysed
// concurrently on a worker pool (cfg.Workers): each scale is one
// ChangeSet applied to a per-worker what-if session (falling back to an
// independently scaled full clone under DisableWhatIf), and the result
// is assembled in scale order afterwards, so the outcome is identical
// to the serial sweep.
func Sweep(k *kmatrix.KMatrix, cfg SweepConfig) (*Result, error) {
	scales := cfg.scales()
	res := &Result{Scales: scales, Reports: make([]*rta.Report, len(scales))}

	analysis := cfg.Analysis
	analysis.Bus = k.Bus()

	errs := make([]error, len(scales))
	if cfg.DisableWhatIf {
		parallel.For(len(scales), cfg.Workers, func(_, si int) {
			scaled := k.WithJitterScale(scales[si], cfg.OnlyUnknown)
			rep, err := rta.Analyze(scaled.ToRTA(), analysis)
			if err != nil {
				errs[si] = fmt.Errorf("sensitivity: scale %.2f: %w", scales[si], err)
				return
			}
			res.Reports[si] = rep
		})
	} else {
		pool := whatif.NewSessionPool(k, cfg.Analysis, cfg.Cache, cfg.Workers)
		parallel.For(len(scales), cfg.Workers, func(worker, si int) {
			sess := pool.Session(worker)
			sess.Reset()
			if err := sess.Apply(whatif.ScaleJitter{Scale: scales[si], OnlyUnknown: cfg.OnlyUnknown}); err != nil {
				errs[si] = fmt.Errorf("sensitivity: scale %.2f: %w", scales[si], err)
				return
			}
			rep, err := sess.Analyze()
			if err != nil {
				errs[si] = fmt.Errorf("sensitivity: scale %.2f: %w", scales[si], err)
				return
			}
			res.Reports[si] = rep
		})
	}
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}

	curveIdx := map[string]int{}
	for si, scale := range scales {
		rep := res.Reports[si]
		if si == 0 {
			res.Curves = make([]Curve, len(rep.Results))
			for i, r := range rep.Results {
				res.Curves[i] = Curve{
					Message:  r.Message.Name,
					Period:   r.Message.Event.Period,
					Priority: r.Priority,
					Points:   make([]Point, 0, len(scales)),
				}
				curveIdx[r.Message.Name] = i
			}
		}
		for _, r := range rep.Results {
			idx, ok := curveIdx[r.Message.Name]
			if !ok {
				return nil, fmt.Errorf("sensitivity: message %q appeared mid-sweep", r.Message.Name)
			}
			delay := r.WCRT
			if delay != rta.Unschedulable {
				delay -= r.Message.Event.Jitter
			}
			res.Curves[idx].Points = append(res.Curves[idx].Points, Point{
				Scale:       scale,
				WCRT:        r.WCRT,
				Delay:       delay,
				Deadline:    r.Deadline,
				Schedulable: r.Schedulable,
			})
		}
	}
	return res, nil
}
