package sensitivity

import (
	"fmt"
	"time"

	"repro/internal/can"
	"repro/internal/kmatrix"
	"repro/internal/rta"
	"repro/internal/whatif"
)

// Extensibility answers the paper's Section 2 question "Can more ECUs
// (and how many) be connected without overloading the bus?": the largest
// number of clones of a template message that can be added — at
// identifiers above the existing ones, the usual place for late
// additions — while every message (old and new) still meets its
// deadline at the given operating jitter scale.
//
// Adding messages only ever hurts, so the count is found by bisection.
func Extensibility(k *kmatrix.KMatrix, template kmatrix.Message, cfg SweepConfig,
	operatingScale float64, max int) (int, error) {

	if err := template.Validate(); err != nil {
		return 0, err
	}
	if max < 1 {
		return 0, fmt.Errorf("sensitivity: max %d must be positive", max)
	}
	analysis := cfg.Analysis
	analysis.Bus = k.Bus()

	// Place additions above every existing identifier.
	var base can.ID
	for _, m := range k.Messages {
		if m.ID > base {
			base = m.ID
		}
	}
	base++
	format := can.Standard11Bit
	if template.Extended {
		format = can.Extended29Bit
	}
	if base+can.ID(max) > format.MaxID() {
		return 0, fmt.Errorf("sensitivity: %d additions exceed the %s identifier space", max, format)
	}

	addition := func(i int) kmatrix.Message {
		add := template
		add.Name = fmt.Sprintf("%s_ext%03d", template.Name, i+1)
		add.ID = base + can.ID(i)
		add.Jitter = scaleDuration(operatingScale, add.Period)
		return add
	}
	var okWith func(n int) (bool, error)
	if cfg.DisableWhatIf {
		okWith = func(n int) (bool, error) {
			trial := k.WithJitterScale(operatingScale, cfg.OnlyUnknown)
			for i := 0; i < n; i++ {
				trial.Messages = append(trial.Messages, addition(i))
			}
			rep, err := rta.Analyze(trial.ToRTA(), analysis)
			if err != nil {
				return false, err
			}
			return rep.AllSchedulable(), nil
		}
	} else {
		// The additions sit below every existing identifier, so each
		// bisection probe re-analyses only the additions themselves; the
		// existing matrix at the operating point is shared across probes.
		sess := whatif.NewBusSession(k, cfg.Analysis, whatif.Options{Store: cfg.Cache, Workers: 1})
		okWith = func(n int) (bool, error) {
			sess.Reset()
			changes := make([]whatif.Change, 0, n+1)
			changes = append(changes, whatif.ScaleJitter{Scale: operatingScale, OnlyUnknown: cfg.OnlyUnknown})
			for i := 0; i < n; i++ {
				changes = append(changes, whatif.AddMessage{Row: addition(i)})
			}
			if err := sess.Apply(changes...); err != nil {
				return false, err
			}
			rep, err := sess.Analyze()
			if err != nil {
				return false, err
			}
			return rep.AllSchedulable(), nil
		}
	}

	ok0, err := okWith(0)
	if err != nil {
		return 0, err
	}
	if !ok0 {
		return -1, nil
	}
	okMax, err := okWith(max)
	if err != nil {
		return 0, err
	}
	if okMax {
		return max, nil
	}
	lo, hi := 0, max // lo feasible, hi infeasible
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		ok, err := okWith(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// scaleDuration returns scale*d, rounded down to whole nanoseconds.
func scaleDuration(scale float64, d time.Duration) time.Duration {
	return time.Duration(scale * float64(d))
}
