package sensitivity

import (
	"reflect"
	"testing"

	"repro/internal/can"
	"repro/internal/kmatrix"
	"repro/internal/rta"
	"repro/internal/whatif"
)

// The incremental what-if path must be bit-identical to the clone-based
// fallback for every derived search.

func equivMatrix() *kmatrix.KMatrix {
	return kmatrix.Powertrain(kmatrix.GenConfig{Seed: 3, Messages: 26})
}

func equivConfig(workers int) SweepConfig {
	return SweepConfig{
		Analysis: rta.Config{Stuffing: can.StuffingWorstCase, DeadlineModel: rta.DeadlineImplicit},
		Workers:  workers,
	}
}

func TestSweepWhatIfEquivalence(t *testing.T) {
	k := equivMatrix()
	for _, workers := range []int{1, 4} {
		cfg := equivConfig(workers)
		fast, err := Sweep(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.DisableWhatIf = true
		slow, err := Sweep(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("workers=%d: whatif sweep differs from clone-based sweep", workers)
		}
	}
}

func TestToleranceWhatIfEquivalence(t *testing.T) {
	k := equivMatrix()
	cfg := equivConfig(2)
	fast, err := ToleranceTable(k, cfg, 0.1, 1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg = equivConfig(2)
	cfg.DisableWhatIf = true
	slow, err := ToleranceTable(k, cfg, 0.1, 1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatal("whatif tolerance table differs from clone-based table")
	}
}

func TestExtensibilityWhatIfEquivalence(t *testing.T) {
	k := equivMatrix()
	template := kmatrix.Message{
		Name: "Ext", DLC: 8, Period: 20 * ms, Sender: "ECU1",
	}
	fast, err := Extensibility(k, template, equivConfig(1), 0.1, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := equivConfig(1)
	cfg.DisableWhatIf = true
	slow, err := Extensibility(k, template, cfg, 0.1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if fast != slow {
		t.Fatalf("whatif extensibility %d != clone-based %d", fast, slow)
	}
}

// TestToleranceSharedCacheAcrossRows checks that the table actually
// shares work across rows when given one store.
func TestToleranceSharedCacheAcrossRows(t *testing.T) {
	k := equivMatrix()
	cfg := equivConfig(1)
	cfg.Cache = whatif.NewStore(0)
	if _, err := ToleranceTable(k, cfg, 0.1, 1.0, 0.1); err != nil {
		t.Fatal(err)
	}
	st := cfg.Cache.Stats()
	// Every row probes single-message edits of the same operating point;
	// the untouched high-priority prefixes must be served from the
	// shared store many times over.
	if st.Hits < uint64(len(k.Messages)) {
		t.Fatalf("tolerance table shared almost nothing: %d hits vs %d misses", st.Hits, st.Misses)
	}
}
