// Package repro is a from-scratch Go reproduction of Richter, Jersak &
// Ernst, "How OEMs and Suppliers can face the Network Integration
// Challenges" (ERTS 2006): SymTA/S-style worst-case timing analysis for
// automotive CAN networks, with the paper's case-study experiments —
// load analysis, jitter sensitivity, error-aware message-loss bounds,
// genetic CAN-ID optimization and the OEM/supplier contract duality.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); cmd/symtago is the command-line front end, and
// bench_test.go in this directory regenerates every figure of the paper.
package repro
