// Flashing: "How about diagnosis and ECU flashing?" (Section 2).
//
// ECU reprogramming injects bulk transfer frames into a bus dimensioned
// for control traffic. The what-if analysis answers, before any
// prototype exists, (a) whether the control messages survive a flashing
// session, (b) what transfer rate the session can sustain, and (c) under
// which environmental assumptions — on the road, with worst-case burst
// errors, the transfer itself starves; in the shielded workshop the
// analysis certifies a usable rate.
//
// Run with: go run ./examples/flashing
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/kmatrix"
	"repro/internal/rta"
)

const ms = time.Millisecond

// withFlashing adds a diagnostic/flashing stream: 8-byte transfer frames
// at the given period plus a sparse tester-present message, at the
// low-priority identifiers diagnostics traditionally gets.
func withFlashing(k *kmatrix.KMatrix, period time.Duration) *kmatrix.KMatrix {
	out := k.Clone()
	out.Messages = append(out.Messages,
		kmatrix.Message{
			Name: "FlashTransfer", ID: 0x6E0, DLC: 8,
			Period: period, Sender: "Tester",
		},
		kmatrix.Message{
			Name: "TesterPresent", ID: 0x7E0, DLC: 2,
			Period: 1000 * ms, Sender: "Tester",
		},
	)
	return out
}

// sweep prints the rate table under one scenario and returns the fastest
// loss-free transfer period (0 when none qualifies).
func sweep(base *kmatrix.KMatrix, cfg rta.Config, label string) time.Duration {
	fmt.Printf("%s:\n", label)
	fmt.Printf("  %-12s %-12s %-10s %-8s %s\n", "frame period", "throughput", "bus load", "misses", "who")
	var okPeriod time.Duration
	for _, period := range []time.Duration{2 * ms, 5 * ms, 10 * ms, 20 * ms, 50 * ms, 100 * ms} {
		k := withFlashing(base, period)
		rep, err := rta.Analyze(k.ToRTA(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		var missed []string
		for _, r := range rep.Results {
			if !r.Schedulable {
				missed = append(missed, r.Message.Name)
			}
		}
		throughput := float64(8) / period.Seconds() / 1024 // KiB/s of payload
		fmt.Printf("  %-12v %7.1f KiB/s %7.1f%% %6d   %s\n",
			period, throughput, 100*rep.Utilization, len(missed), strings.Join(missed, ","))
		if len(missed) == 0 && okPeriod == 0 {
			okPeriod = period
		}
	}
	fmt.Println()
	return okPeriod
}

func main() {
	base := experiments.DefaultMatrix()
	// The operating point: all assumed jitters at 5% of the period.
	base = base.WithJitterScale(0.05, false)

	road := experiments.WorstCaseAnalysis()
	road.Bus = base.Bus()
	workshop := experiments.BestCaseAnalysis()
	workshop.Bus = base.Bus()

	rep, err := rta.Analyze(base.ToRTA(), road)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (no flashing, road assumptions): %d of %d messages miss, load %.1f%%\n\n",
		rep.MissCount(), len(rep.Results), 100*rep.Utilization)

	roadOK := sweep(base, road, "on the road (burst errors, worst-case stuffing)")
	workshopOK := sweep(base, workshop, "in the workshop (shielded, error-free)")

	// Flashing sessions additionally suspend non-critical application
	// traffic (UDS communication control): only the fast safety-relevant
	// messages keep running.
	session := base.Clone()
	kept := session.Messages[:0]
	for _, m := range session.Messages {
		if m.Period <= 25*ms {
			kept = append(kept, m)
		}
	}
	session.Messages = kept
	sessionOK := sweep(session, workshop,
		fmt.Sprintf("workshop session (slow traffic suspended, %d of %d messages remain)",
			len(session.Messages), len(base.Messages)))

	// The verdict the paper's Section 2 question asks for.
	if roadOK == 0 || roadOK >= 100*ms {
		fmt.Println("verdict: on the road the transfer frame itself starves behind the")
		fmt.Println("control traffic once bus errors are accounted for — over-the-air")
		fmt.Println("flashing at a useful rate is out.")
	}
	if workshopOK == 0 || sessionOK == 0 {
		log.Fatal("unexpected: no workshop rate certified")
	}
	fmt.Printf("With full traffic the workshop certifies one frame per %v; suspending\n", workshopOK)
	fmt.Printf("the slow application traffic raises that to one frame per %v\n", sessionOK)
	fmt.Printf("(%.1f KiB/s) with every remaining control message loss-free.\n",
		float64(8)/sessionOK.Seconds()/1024)
	fmt.Println("All of it determined without test equipment.")
}
