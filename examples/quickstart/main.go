// Quickstart: why load analysis is not enough.
//
// Builds a small 6-message CAN bus, runs the average-load model of the
// paper's Section 3.1 and then the worst-case response-time analysis of
// Section 3.2 — showing a bus at a comfortable-looking 26% load in which
// a message still misses its deadline once jitter enters the picture.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/can"
	"repro/internal/kmatrix"
	"repro/internal/load"
	"repro/internal/report"
	"repro/internal/rta"
)

func main() {
	ms := time.Millisecond
	k := &kmatrix.KMatrix{
		BusName: "demo",
		BitRate: can.Rate125k, // a slow body bus: 8-byte frames take 1.08ms
		Messages: []kmatrix.Message{
			{Name: "Airbag", ID: 0x050, DLC: 4, Period: 10 * ms, Sender: "ECU1"},
			// Wiper and Locks run in low-priority OSEK tasks on a busy
			// body controller; the supplier's data sheet reports large
			// send jitters.
			{Name: "Wiper", ID: 0x120, DLC: 8, Period: 20 * ms, Jitter: 16 * ms, JitterKnown: true, Sender: "ECU2"},
			{Name: "Locks", ID: 0x200, DLC: 8, Period: 25 * ms, Jitter: 21 * ms, JitterKnown: true, Sender: "ECU2"},
			{Name: "Lights", ID: 0x280, DLC: 8, Period: 25 * ms, Sender: "ECU3"},
			{Name: "Mirror", ID: 0x2C0, DLC: 8, Period: 25 * ms, Sender: "ECU3"},
			{Name: "Climate", ID: 0x300, DLC: 8, Period: 20 * ms, Deadline: 8 * ms, Sender: "ECU4"},
		},
	}
	if err := k.Validate(); err != nil {
		log.Fatal(err)
	}

	// Step 1 — the load model: everything looks fine.
	fmt.Println("== Step 1: average bus load (the model everyone uses) ==")
	fmt.Print(load.FromKMatrix(k, can.StuffingNominal))
	lo, hi := load.CriticalLimits()
	fmt.Printf("well below the %.0f-%.0f%% folklore limits — ship it?\n\n", 100*lo, 100*hi)

	// Step 2 — worst-case response times: one message is in trouble.
	fmt.Println("== Step 2: worst-case response-time analysis ==")
	rep, err := rta.Analyze(k.ToRTA(), rta.Config{
		Bus:      k.Bus(),
		Stuffing: can.StuffingWorstCase,
	})
	if err != nil {
		log.Fatal(err)
	}
	var rows [][]string
	for _, r := range rep.Results {
		status := "ok"
		if !r.Schedulable {
			status = "MISSES DEADLINE"
		}
		rows = append(rows, []string{
			r.Message.Name, r.Message.Frame.ID.String(),
			r.WCRT.String(), r.Deadline.String(), status,
		})
	}
	fmt.Print(report.Table([]string{"message", "id", "WCRT", "deadline", "status"}, rows))

	fmt.Println()
	if rep.AllSchedulable() {
		fmt.Println("unexpected: everything schedulable")
		return
	}
	fmt.Println("The load model hid this: in the worst corner case the jittery Wiper and")
	fmt.Println("Locks messages each hit twice inside Climate's busy window, pushing it")
	fmt.Println("past its 8ms deadline — at a bus load of barely a quarter.")
}
