// Gateway: compositional analysis of a two-bus topology, cross-checked
// by network simulation.
//
// A sensor task on the chassis ECU sends WheelSpeed over the chassis
// bus; a store-and-forward gateway forwards it to the powertrain bus
// where the engine ECU consumes it. The compositional engine
// (internal/core) propagates event models across the chain —
// "gatewaying strategies can be optimized... usually under the control
// of the OEMs" — and bounds the end-to-end latency. The example then
// degrades the gateway (slower, more jittery polling) and shows the
// bound react; for both configurations the same system model drives
// the network simulator (internal/netsim), printing observed maximum
// latencies next to the analytic bounds.
//
// Run with: go run ./examples/gateway
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/eventmodel"
	"repro/internal/gateway"
	"repro/internal/netsim"
	"repro/internal/osek"
	"repro/internal/rta"
)

const (
	us = time.Microsecond
	ms = time.Millisecond
)

// buildSystem wires the topology; the gateway's forwarding service is
// the tunable: the degraded configuration polls slower with more
// jitter, as a gateway under extra routing load would.
func buildSystem(service eventmodel.Model) (*core.System, error) {
	s := core.NewSystem()

	// Chassis ECU: the wheel-speed acquisition task plus background.
	if err := s.AddECU("chassisECU", osek.Config{}, []osek.Task{
		{Name: "acquire", Priority: 2, WCET: 600 * us, BCET: 400 * us,
			Event: eventmodel.Periodic(10 * ms), Kind: osek.Preemptive},
		{Name: "filter", Priority: 1, WCET: 2 * ms, BCET: 1500 * us,
			Event: eventmodel.Periodic(20 * ms), Kind: osek.Cooperative},
	}); err != nil {
		return nil, err
	}

	// Chassis bus at 500 kbit/s.
	if err := s.AddBus("chassisBus",
		rta.Config{Bus: can.Bus{BitRate: can.Rate500k}, Stuffing: can.StuffingWorstCase},
		[]rta.Message{
			{Name: "WheelSpeed", Frame: can.Frame{ID: 0x0A0, DLC: 8}, Event: eventmodel.Periodic(10 * ms)},
			{Name: "Suspension", Frame: can.Frame{ID: 0x150, DLC: 8}, Event: eventmodel.Periodic(20 * ms)},
			{Name: "Brake", Frame: can.Frame{ID: 0x060, DLC: 6}, Event: eventmodel.PeriodicJitter(5*ms, 1*ms)},
		}); err != nil {
		return nil, err
	}

	// The store-and-forward gateway: a polling forwarding task whose
	// service model is the "queue configuration" knob of Section 5.
	if err := s.AddGateway("gateway", gateway.Config{
		Service: service, Policy: gateway.SharedFIFO, QueueDepth: 4,
	}, []string{"wheel"}); err != nil {
		return nil, err
	}

	// Powertrain bus at 500 kbit/s.
	if err := s.AddBus("powertrainBus",
		rta.Config{Bus: can.Bus{BitRate: can.Rate500k}, Stuffing: can.StuffingWorstCase},
		[]rta.Message{
			{Name: "WheelSpeedPT", Frame: can.Frame{ID: 0x0B0, DLC: 8}, Event: eventmodel.Periodic(10 * ms)},
			{Name: "EngineTorque", Frame: can.Frame{ID: 0x090, DLC: 8}, Event: eventmodel.PeriodicJitter(10*ms, 2*ms)},
			{Name: "Lambda", Frame: can.Frame{ID: 0x200, DLC: 4}, Event: eventmodel.Periodic(50 * ms)},
		}); err != nil {
		return nil, err
	}

	// Engine ECU: the consumer.
	if err := s.AddECU("engineECU", osek.Config{}, []osek.Task{
		{Name: "control", Priority: 1, WCET: 1 * ms, BCET: 800 * us,
			Event: eventmodel.Periodic(10 * ms), Kind: osek.Preemptive},
	}); err != nil {
		return nil, err
	}

	// The chain: acquire -> WheelSpeed -> gateway -> WheelSpeedPT -> control.
	links := [][2]core.ElementRef{
		{{Resource: "chassisECU", Element: "acquire"}, {Resource: "chassisBus", Element: "WheelSpeed"}},
		{{Resource: "chassisBus", Element: "WheelSpeed"}, {Resource: "gateway", Element: "wheel"}},
		{{Resource: "gateway", Element: "wheel"}, {Resource: "powertrainBus", Element: "WheelSpeedPT"}},
		{{Resource: "powertrainBus", Element: "WheelSpeedPT"}, {Resource: "engineECU", Element: "control"}},
	}
	for _, l := range links {
		if err := s.Connect(l[0], l[1]); err != nil {
			return nil, err
		}
	}
	if err := s.AddPath("wheel-to-engine",
		core.ElementRef{Resource: "chassisECU", Element: "acquire"},
		core.ElementRef{Resource: "chassisBus", Element: "WheelSpeed"},
		core.ElementRef{Resource: "gateway", Element: "wheel"},
		core.ElementRef{Resource: "powertrainBus", Element: "WheelSpeedPT"},
		core.ElementRef{Resource: "engineECU", Element: "control"},
	); err != nil {
		return nil, err
	}
	return s, nil
}

// analyzeAndSimulate bounds the path compositionally, then drives the
// network simulator from the same system model and reports the
// observed end-to-end maximum against the bound.
func analyzeAndSimulate(label string, service eventmodel.Model) time.Duration {
	s, err := buildSystem(service)
	if err != nil {
		log.Fatal(err)
	}
	a, err := s.Analyze(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s (gateway polling %v) ==\n", label, service)
	fmt.Printf("converged after %d iterations, all schedulable: %v\n",
		a.Iterations, a.AllSchedulable())
	p := a.Paths[0]
	fmt.Printf("end-to-end bound %s: %v\n", p.Name, p.Latency)
	for _, h := range p.Hops {
		fmt.Printf("  %-28s %v\n", h.Ref.String(), h.Delay)
	}

	// Holistic cross-check: simulate the same wiring (the ECU hops are
	// analysis-only, so the simulated bound covers bus + gateway hops).
	topo, err := netsim.FromSystem(s)
	if err != nil {
		log.Fatal(err)
	}
	simBound, ok := netsim.SimulatedPathBound(s, a, "wheel-to-engine")
	if !ok {
		log.Fatal("no simulated path bound")
	}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	results, err := netsim.RunSeeds(topo, netsim.Config{Duration: 2 * time.Second}, seeds, 0)
	if err != nil {
		log.Fatal(err)
	}
	var observed time.Duration
	completed := 0
	for _, res := range results {
		pr := res.Path("wheel-to-engine")
		completed += pr.Completed
		if pr.MaxLatency > observed {
			observed = pr.MaxLatency
		}
		if pr.MaxLatency > simBound {
			log.Fatalf("observed %v beats the bound %v — analysis unsound", pr.MaxLatency, simBound)
		}
	}
	fmt.Printf("netsim, %d seeds: %d deliveries, observed max %v <= bound %v (margin %.1f%%)\n\n",
		len(seeds), completed, observed, simBound,
		100*float64(simBound-observed)/float64(simBound))
	return p.Latency
}

func main() {
	light := analyzeAndSimulate("baseline", eventmodel.Periodic(1*ms))
	heavy := analyzeAndSimulate("gateway under load", eventmodel.PeriodicJitter(4*ms, 1*ms))
	if heavy <= light {
		log.Fatal("expected the loaded gateway to stretch the bound")
	}
	fmt.Printf("gateway load stretched the end-to-end bound by %v — the kind of\n", heavy-light)
	fmt.Println("integration effect that surfaces only in system-level analysis,")
	fmt.Println("and that the network simulation now observes operationally.")

	dimensionQueue()
}

// dimensionQueue sizes the gateway's forwarding FIFO — the "queue
// configuration" knob of the paper's Section 5 — for the chassis-side
// flows it must carry, including a bursty diagnostic stream.
func dimensionQueue() {
	fmt.Println("\n== gateway queue dimensioning ==")
	flows := []gateway.Flow{
		{Name: "WheelSpeed", Arrival: eventmodel.PeriodicJitter(10*ms, 2*ms)},
		{Name: "Suspension", Arrival: eventmodel.PeriodicJitter(20*ms, 4*ms)},
		{Name: "Brake", Arrival: eventmodel.PeriodicJitter(5*ms, 1*ms)},
		{Name: "Diag", Arrival: eventmodel.PeriodicBurst(50*ms, 120*ms, 2*ms)},
	}
	for _, service := range []time.Duration{1 * ms, 2 * ms} {
		rep, err := gateway.Analyze(flows, gateway.Config{
			Name:    "chassis-gateway",
			Service: eventmodel.Periodic(service),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("forwarding every %v: required queue depth %d, worst queueing delay %v\n",
			service, rep.RequiredDepth, rep.Delay)
	}
	fmt.Println("the slower polling rate needs the deeper queue — dimension it from the")
	fmt.Println("analysis instead of guessing and shipping a silent overflow.")
}
