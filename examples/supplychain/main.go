// Supplychain: the Figure 6 duality as an API walkthrough.
//
// An OEM and two suppliers exchange data sheets and requirement
// specifications over event models. The supplier's first ECU design
// violates the OEM's send-jitter requirement; after an internal
// re-prioritisation (never disclosed to the OEM) the second design
// passes, the OEM commits the guarantee to its bus analysis and in turn
// guarantees arrival timing to the consuming supplier.
//
// Run with: go run ./examples/supplychain
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/can"
	"repro/internal/errormodel"
	"repro/internal/eventmodel"
	"repro/internal/kmatrix"
	"repro/internal/osek"
	"repro/internal/rta"
	"repro/internal/supplychain"
)

func main() {
	ms := time.Millisecond
	us := time.Microsecond

	// The OEM's K-Matrix: three messages across three ECUs.
	k := &kmatrix.KMatrix{
		BusName: "powertrain",
		BitRate: can.Rate500k,
		Messages: []kmatrix.Message{
			{Name: "EngineTorque", ID: 0x100, DLC: 8, Period: 10 * ms, Sender: "ECU1", Receivers: []string{"ECU3"}},
			{Name: "WheelSpeed", ID: 0x180, DLC: 8, Period: 20 * ms, Sender: "ECU2", Receivers: []string{"ECU3"}},
			{Name: "GearStatus", ID: 0x240, DLC: 4, Period: 50 * ms, Sender: "ECU3", Receivers: []string{"ECU1"}},
		},
	}
	if err := k.Validate(); err != nil {
		log.Fatal(err)
	}

	// Step 1 — the OEM formulates a requirement from its sensitivity
	// analysis: EngineTorque's send jitter must stay within 15% of the
	// period.
	oemSpec := supplychain.OEMSendRequirements(k, 0.15, map[string]bool{"EngineTorque": true})
	fmt.Printf("OEM requires: %s within %v\n",
		oemSpec.Entries[0].Message, oemSpec.Entries[0].Event)

	// Step 2 — the ECU1 supplier analyses its first design. The torque
	// task sits below a heavy I/O task: too much response jitter.
	design := []osek.Task{
		{Name: "io", Priority: 3, WCET: 3 * ms, BCET: 2500 * us,
			Event: eventmodel.Periodic(8 * ms), Kind: osek.Preemptive},
		{Name: "torque", Priority: 1, WCET: 800 * us, BCET: 600 * us,
			Event: eventmodel.Periodic(10 * ms), Kind: osek.Preemptive},
	}
	ds, err := supplychain.SupplierSendGuarantees("ECU1-supplier", design,
		map[string]string{"torque": "EngineTorque"}, osek.Config{
			Overheads: osek.Overheads{Activate: 20 * us, Terminate: 20 * us, ContextSwitch: 10 * us},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supplier guarantees (design 1): %v\n", ds.Entries[0].Event)
	check := supplychain.Check(ds, oemSpec)
	fmt.Printf("OEM check: %s\n", check.String())
	for _, v := range check.Violations {
		fmt.Printf("  %s: %s\n", v.Message, v.Reason)
	}

	// Step 3 — refinement: the supplier raises the torque task's
	// priority. Its internal architecture stays private; only the new
	// guarantee crosses the interface.
	design[1].Priority = 4
	ds, err = supplychain.SupplierSendGuarantees("ECU1-supplier", design,
		map[string]string{"torque": "EngineTorque"}, osek.Config{
			Overheads: osek.Overheads{Activate: 20 * us, Terminate: 20 * us, ContextSwitch: 10 * us},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsupplier guarantees (design 2): %v\n", ds.Entries[0].Event)
	check = supplychain.Check(ds, oemSpec)
	fmt.Printf("OEM check: %s\n", check.String())
	if !check.OK() {
		log.Fatal("design 2 should satisfy the requirement")
	}

	// Step 4 — the guarantee becomes a bus-analysis input; the OEM
	// publishes delivery guarantees ("turn the tables").
	k.ByName("EngineTorque").Jitter = ds.Entries[0].Event.Jitter
	k.ByName("EngineTorque").JitterKnown = true
	worst := rta.Config{
		Stuffing: can.StuffingWorstCase,
		Errors:   errormodel.Sporadic{Interval: 20 * ms},
	}
	oemDS, err := supplychain.OEMDeliveryGuarantees(k, worst)
	if err != nil {
		log.Fatal(err)
	}
	g := oemDS.ByMessage("EngineTorque")
	fmt.Printf("\nOEM guarantees delivery: %v, latency <= %v\n", g.Event, g.MaxLatency)

	// Step 5 — the consuming supplier (ECU3) checks its algorithm needs.
	ecu3 := supplychain.SupplierArrivalRequirements("ECU3-supplier", k,
		map[string]supplychain.ArrivalNeed{
			"EngineTorque": {MaxJitter: 4 * ms, MaxAge: 6 * ms},
		})
	final := supplychain.Check(oemDS, ecu3)
	fmt.Printf("ECU3 supplier check: %s\n", final.String())
	if !final.OK() {
		log.Fatal("arrival guarantee should close the loop")
	}
	fmt.Println("\nloop closed: requirements met in both directions, no IP disclosed.")
}
