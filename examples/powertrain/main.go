// Powertrain: the paper's case study end to end (Sections 4.1-4.3).
//
// Loads the synthetic power-train K-Matrix (the stand-in for the
// proprietary one, see DESIGN.md), then walks the paper's experiment
// sequence:
//
//  1. zero jitters, no errors — verify all deadlines are met;
//  2. jitter sweep — classify messages as robust or sensitive (Fig. 4);
//  3. loss curves under best- and worst-case assumptions (Fig. 5,
//     dotted lines);
//  4. genetic CAN-ID optimization — eliminate the loss at 25% jitter
//     (Fig. 5, solid lines).
//
// Run with: go run ./examples/powertrain  (takes a few seconds: it runs
// the full GA).
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/kmatrix"
	"repro/internal/rta"
	"repro/internal/sensitivity"
)

func main() {
	k := experiments.DefaultMatrix()
	fmt.Printf("case study: bus %q, %d messages, %d nodes, %d supplier jitters known\n\n",
		k.BusName, len(k.Messages), len(k.Nodes()),
		len(k.Messages)-k.UnknownJitterCount())

	// Experiment 1 — zero jitters, no errors: all deadlines met.
	// "Such simplifications have a limited practical relevance. Very
	// important is, however, the fact that we could do such what-if
	// observations within minutes."
	step1(k)

	// Experiment 2 — sensitivity (Figure 4).
	f4, err := experiments.RunFigure4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f4.Render())

	// Experiments 3 and 4 — loss curves and optimization (Figure 5).
	f5, err := experiments.RunFigure5(experiments.Figure5Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f5.Render())
}

func step1(k *kmatrix.KMatrix) {
	zero := k.WithJitterScale(0, false)
	rep, err := rta.Analyze(zero.ToRTA(), rta.Config{Bus: k.Bus()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment 1 (zero jitters, no errors): %d of %d messages meet their deadline\n",
		len(rep.Results)-rep.MissCount(), len(rep.Results))
	if !rep.AllSchedulable() {
		log.Fatal("unexpected: baseline must be schedulable")
	}

	// The same question with an analysis sweep instead of test equipment:
	// how far do the assumptions stretch before something breaks?
	loss, err := sensitivity.Loss(k, sensitivity.SweepConfig{
		Analysis: experiments.BestCaseAnalysis(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first loss under best-case assumptions at %.0f%% jitter\n\n",
		100*sensitivity.FirstLossScale(loss))
}
